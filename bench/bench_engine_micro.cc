// Engine micro-benchmarks (google-benchmark): SINR round throughput with
// the dense gain matrix vs on-the-fly gains, exact vs grid-indexed
// interference resolution, schedule execution overhead, and selector
// membership cost. These gate how large the protocol experiments can run.
//
// `--compare_json` skips google-benchmark and instead times one dense round
// (every 8th node transmitting) in exact and grid mode across
// n in {256, 1024, 4096, 16384}, emitting a JSON record per size for the
// bench trajectory.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstring>
#include <iostream>
#include <limits>

#include "dcc/cluster/profile.h"
#include "dcc/sel/ssf.h"
#include "dcc/sim/runner.h"
#include "dcc/sinr/engine.h"
#include "dcc/workload/generators.h"

namespace dcc {
namespace {

sinr::Network MakeNet(int n, std::int64_t id_space) {
  sinr::Params params = sinr::Params::Default();
  params.id_space = id_space;
  auto pts = workload::UniformSquare(n, std::sqrt(static_cast<double>(n)),
                                     42);
  return workload::MakeNetwork(std::move(pts), params, 7);
}

// Every 8th node transmits — the dense-transmitter regime of the
// acceptance target.
void DenseTxSplit(std::size_t n, std::vector<std::size_t>& tx,
                  std::vector<std::size_t>& listeners) {
  tx.clear();
  listeners.clear();
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 8 == 0) {
      tx.push_back(i);
    } else {
      listeners.push_back(i);
    }
  }
}

void BM_EngineStepDense(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto net = MakeNet(n, 1 << 16);
  const sinr::Engine eng(net);
  std::vector<std::size_t> tx, listeners;
  for (int i = 0; i < n; ++i) {
    if (i % 8 == 0) {
      tx.push_back(static_cast<std::size_t>(i));
    } else {
      listeners.push_back(static_cast<std::size_t>(i));
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.Step(tx, listeners));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(tx.size()) *
                          static_cast<std::int64_t>(listeners.size()));
}
BENCHMARK(BM_EngineStepDense)->Arg(64)->Arg(256)->Arg(1024);

// Exact vs grid-indexed interference resolution on one dense round.
// state.range(0) = n, state.range(1) = 0 (exact) or 1 (grid).
void BM_EngineStepMode(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto net = MakeNet(n, 1 << 20);
  const auto mode = state.range(1) == 0 ? sinr::Engine::Mode::kExact
                                        : sinr::Engine::Mode::kGrid;
  const sinr::Engine eng(net, {.mode = mode});
  std::vector<std::size_t> tx, listeners;
  DenseTxSplit(net.size(), tx, listeners);
  std::vector<sinr::Reception> out;
  for (auto _ : state) {
    eng.StepInto(tx, listeners, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(tx.size()) *
                          static_cast<std::int64_t>(listeners.size()));
}
BENCHMARK(BM_EngineStepMode)
    ->ArgsProduct({{256, 1024, 4096, 16384}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

void BM_EngineStepSparseTx(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto net = MakeNet(n, 1 << 16);
  const sinr::Engine eng(net);
  std::vector<std::size_t> tx{0, static_cast<std::size_t>(n / 2)};
  std::vector<std::size_t> listeners;
  for (int i = 1; i < n; ++i) {
    if (i != n / 2) listeners.push_back(static_cast<std::size_t>(i));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.Step(tx, listeners));
  }
}
BENCHMARK(BM_EngineStepSparseTx)->Arg(256)->Arg(1024);

void BM_ExecRoundOverhead(benchmark::State& state) {
  const auto net = MakeNet(256, 1 << 16);
  sim::Exec ex(net);
  std::vector<std::size_t> all(net.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  for (auto _ : state) {
    ex.RunRound(
        all,
        [](std::size_t i) -> std::optional<sim::Message> {
          if (i % 16 != 0) return std::nullopt;
          return sim::Message{};
        },
        [](std::size_t, const sim::Message&) {});
  }
}
BENCHMARK(BM_ExecRoundOverhead);

void BM_SsfMembership(benchmark::State& state) {
  const auto ssf = sel::Ssf::Construct(1 << 16, 8);
  std::int64_t r = 0, x = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ssf.Member(r, x));
    r = (r + 1) % ssf.size();
    x = (x % (1 << 16)) + 1;
  }
}
BENCHMARK(BM_SsfMembership);

void BM_WssMembership(benchmark::State& state) {
  const auto prof = cluster::Profile::Practical(1 << 16);
  const auto sched = prof.MakeWss(1 << 16, 1);
  std::int64_t r = 0;
  NodeId x = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched->Transmits(r, x, 1));
    r = (r + 1) % sched->size();
    x = (x % (1 << 16)) + 1;
  }
}
BENCHMARK(BM_WssMembership);

void BM_GainMatrixConstruction(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  sinr::Params params = sinr::Params::Default();
  params.id_space = 1 << 16;
  const auto pts =
      workload::UniformSquare(n, std::sqrt(static_cast<double>(n)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sinr::Network::WithSequentialIds(pts, params));
  }
}
BENCHMARK(BM_GainMatrixConstruction)->Arg(128)->Arg(512);

// --- exact vs grid comparison with JSON output ------------------------------

double TimeStepMs(const sinr::Engine& eng,
                  const std::vector<std::size_t>& tx,
                  const std::vector<std::size_t>& listeners, int reps) {
  std::vector<sinr::Reception> out;
  eng.StepInto(tx, listeners, out);  // warm scratch buffers / caches
  double best_ms = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    eng.StepInto(tx, listeners, out);
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (r == 0 || ms < best_ms) best_ms = ms;
  }
  return best_ms;
}

int RunCompareJson() {
  std::cout << "{\"bench\": \"engine_micro_exact_vs_grid\", \"tx_fraction\": "
               "0.125, \"results\": [";
  bool first = true;
  for (const int n : {256, 1024, 4096, 16384}) {
    const auto net = MakeNet(n, 1 << 20);
    const sinr::Engine exact(net, {.mode = sinr::Engine::Mode::kExact});
    const sinr::Engine grid(net, {.mode = sinr::Engine::Mode::kGrid});
    std::vector<std::size_t> tx, listeners;
    DenseTxSplit(net.size(), tx, listeners);

    // In-bench equivalence check: same (listener, sender) sequence, SINR
    // within the engine's documented tolerance.
    const auto recs_exact = exact.Step(tx, listeners);
    grid.ResetStats();
    const auto recs_grid = grid.Step(tx, listeners);
    bool match = recs_exact.size() == recs_grid.size();
    for (std::size_t k = 0; match && k < recs_exact.size(); ++k) {
      // Relative SINR tolerance: 1e-9 base plus the cancellation term of
      // the interference computation, eps * |T| * sinr (the `total - best`
      // subtraction amplifies summation-order noise by ~sinr in both
      // modes).
      const double s = recs_exact[k].sinr;
      const double tol =
          s * (1e-9 + std::numeric_limits<double>::epsilon() *
                          static_cast<double>(tx.size()) * s);
      match = recs_exact[k].listener == recs_grid[k].listener &&
              recs_exact[k].sender == recs_grid[k].sender &&
              std::abs(s - recs_grid[k].sinr) <= tol;
    }
    const auto grid_stats = grid.stats();

    const int reps = n >= 16384 ? 3 : 10;
    const double exact_ms = TimeStepMs(exact, tx, listeners, reps);
    const double grid_ms = TimeStepMs(grid, tx, listeners, reps);

    std::cout << (first ? "" : ", ") << "{\"n\": " << n
              << ", \"transmitters\": " << tx.size()
              << ", \"receptions\": " << recs_grid.size()
              << ", \"receptions_match\": " << (match ? "true" : "false")
              << ", \"grid_pruned\": " << grid_stats.grid_pruned
              << ", \"grid_fallbacks\": " << grid_stats.grid_exact_fallbacks
              << ", \"exact_ms\": " << exact_ms
              << ", \"grid_ms\": " << grid_ms
              << ", \"speedup\": " << exact_ms / grid_ms << "}";
    first = false;
  }
  std::cout << "]}" << std::endl;
  return 0;
}

}  // namespace
}  // namespace dcc

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--compare_json") == 0) {
      return dcc::RunCompareJson();
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
