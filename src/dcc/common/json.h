// Minimal JSON *emission* helpers — enough for schema-stable reports
// without pulling a dependency. (There is deliberately no parser here; the
// scenario layer round-trips specs through their flag/string form instead.)
#pragma once

#include <string>

namespace dcc {

// Escapes and quotes `s` as a JSON string literal.
std::string JsonQuote(const std::string& s);

// Shortest decimal representation of `v` that parses back to the same
// double (so emitted metrics are exact and stable across runs). Non-finite
// values — which JSON cannot carry — become null.
std::string JsonNumber(double v);

}  // namespace dcc
