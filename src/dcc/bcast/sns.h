// Sparse Network Schedule (Lemma 4): an O(log N)-round schedule such that
// when the participant set has constant density, every participant's
// message is received at every node within distance 1 - eps.
//
// Thin wrapper over the profile's SNS selector with a success oracle used
// by tests (reception tracked against the ground-truth communication
// graph).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "dcc/cluster/profile.h"
#include "dcc/sim/runner.h"
#include "dcc/sim/schedule.h"

namespace dcc::bcast {

// Executes one SNS over `parts`; `make_msg(index)` builds each
// participant's message (its id is filled into src automatically when the
// returned message has src == kNoNode); `hear` fires for every reception at
// any listener. Returns rounds consumed.
Round RunSns(sim::Exec& ex, const cluster::Profile& prof,
             const std::vector<sim::Participant>& parts,
             const std::function<std::optional<sim::Message>(std::size_t)>&
                 make_msg,
             const std::function<void(std::size_t, const sim::Message&)>& hear,
             std::uint64_t nonce);

}  // namespace dcc::bcast
