# Empty dependencies file for shadowing_test.
# This may be replaced when dependencies are built.
