// dcc_rank — one rank process of the distributed round execution mode.
// Not run by hand: dcc_run --ranks=N (via distrib::Session) fork/execs one
// per rank over a socketpair and speaks the distrib protocol on it. The
// only flag is the inherited socket:
//
//   dcc_rank --fd=N
#include <cstdio>
#include <cstdlib>
#include <string>

#include "dcc/distrib/rank.h"

int main(int argc, char** argv) {
  int fd = -1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--fd=", 0) == 0) {
      char* end = nullptr;
      fd = static_cast<int>(std::strtol(arg.c_str() + 5, &end, 10));
      if (end == nullptr || *end != '\0' || fd < 0) {
        std::fprintf(stderr, "dcc_rank: bad --fd value '%s'\n", arg.c_str());
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "dcc_rank: unknown flag '%s' (usage: dcc_rank --fd=N; "
                   "launched by dcc_run --ranks=N, not by hand)\n",
                   arg.c_str());
      return 2;
    }
  }
  if (fd < 0) {
    std::fprintf(stderr, "dcc_rank: missing --fd=N\n");
    return 2;
  }
  return dcc::distrib::RunRank(fd);
}
