// dcc_run — the one driver for every registered scenario.
//
//   $ dcc_run --topology=uniform:n=4096,side=20 --algo=clustering \
//             --seeds=1..8 --json=out.json
//
// Scenario flags are the ScenarioSpec grammar (see README "Running
// experiments" or --help). Driver-only flags:
//   --list         print registered topologies and algorithms, then exit
//   --canonical    print the spec's canonical content key, then exit
//   --json=PATH    write the sweep report as JSON (- for stdout)
//   --trace=PATH   record a Chrome-trace of the sweep (pure observation)
//   --metrics      dump the metrics registry in Prometheus text form
//   --quiet        suppress the per-run text summary
//   --help         usage
// Exit status is 0 iff every run validated (ok == true).
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "dcc/obs/metrics.h"
#include "dcc/obs/trace.h"
#include "dcc/scenario/dynamics.h"
#include "dcc/scenario/scenario.h"

namespace {

void PrintUsage(std::ostream& os) {
  os << "usage: dcc_run [flags]\n"
        "\n"
        "scenario flags (all optional; defaults in parentheses):\n"
        "  --topology=NAME[:k=v,...]  topology + parameters (uniform)\n"
        "  --algo=NAME[:k=v,...]      algorithm + parameters (clustering)\n"
        "  --seeds=A..B | A,B,C | A   seed sweep (1)\n"
        "  --sweep=KEY:V1,V2,...      size grid: sweep one topology param\n"
        "                             across values, crossed with --seeds\n"
        "  --id-seed=U --nonce=U      replay overrides (seed+1 / seed+2)\n"
        "  --dynamics=k=v,...         dynamic run: mobility + churn, one\n"
        "                             re-clustering per epoch. Driver keys:\n"
        "                             model=waypoint|walk|group, epochs=8,\n"
        "                             epoch_len=1, churn=0, join=churn,\n"
        "                             side=0 (0: bounding box); model keys\n"
        "                             per `--list` (unknown keys rejected)\n"
        "  --alpha= --beta= --eps= --noise= --power=   SINR model\n"
        "  --id-space=N               ID space upper bound (65536)\n"
        "  --shadowing=SPREAD[:SEED]  deterministic per-link shadowing (off)\n"
        "  --engine=exact|grid|auto   interference resolution (auto)\n"
        "  --cell=D                   grid tile side (engine heuristic)\n"
        "  --grid-threshold=N         auto mode's exact->grid cutover (2048)\n"
        "  --rounds=R                 round budget where applicable\n"
        "  --faults=K                 K always-on background jammers (0)\n"
        "  --threads=T                sweep workers AND engine round shards\n"
        "                             on the shared pool (0 = hardware);\n"
        "                             receptions are bit-identical at every\n"
        "                             T, and parallel runs report a\n"
        "                             dcc.parallel.v1 section\n"
        "  --pipeline=on|off          overlap each round's prologue build\n"
        "                             with the previous round's shards for\n"
        "                             schedule-driven algorithms (grid mode,\n"
        "                             threads > 1; bit-identical output) (off)\n"
        "  --ranks=N                  distribute rounds across N rank\n"
        "                             processes (grid mode; fork/exec of\n"
        "                             dcc_rank over socketpairs). Receptions\n"
        "                             are bit-identical to --ranks=0 and runs\n"
        "                             report a dcc.distrib.v1 section (0)\n"
        "  --farfield=pyramid|flat    far-field bound accumulation: descend\n"
        "                             the multi-resolution tile pyramid, or\n"
        "                             walk every occupied tile per listener\n"
        "                             tile. Receptions are bit-identical\n"
        "                             either way (pyramid)\n"
        "  --prologue-cache=N         memoize up to N round prologues keyed\n"
        "                             on the transmit/listener sets so\n"
        "                             periodic schedules (TDMA) skip the\n"
        "                             serial prologue on repeats;\n"
        "                             bit-identical output (0 = off)\n"
        "\n"
        "driver flags:\n"
        "  --list --json=PATH --quiet --help   (--json=- writes the report\n"
        "                             to stdout and implies --quiet)\n"
        "  --canonical                print the spec's canonical content\n"
        "                             key — the order-invariant line the\n"
        "                             dccd service caches address on — and\n"
        "                             exit\n"
        "  --trace=PATH               record spans/counters for the whole\n"
        "                             sweep and write one Chrome-trace JSON\n"
        "                             (load in Perfetto / chrome://tracing;\n"
        "                             rank traces are stitched in). Pure\n"
        "                             observation: receptions stay\n"
        "                             bit-identical. Summary on stderr\n"
        "  --metrics                  after the sweep, dump the process\n"
        "                             metrics registry (Prometheus text\n"
        "                             exposition) to stderr\n"
        "\n"
        "run `dcc_run --list` for registered topologies/algorithms.\n";
}

void PrintRegistries(std::ostream& os) {
  os << "topologies:\n";
  for (const auto& [name, help] : dcc::scenario::Topologies().List()) {
    os << "  " << name << "\n      " << help << '\n';
  }
  os << "algorithms:\n";
  for (const auto& [name, help] : dcc::scenario::Algorithms().List()) {
    os << "  " << name << "\n      " << help << '\n';
  }
  os << "mobility models (--dynamics=model=NAME,...; driver keys: model, "
        "epochs, epoch_len, churn, join, side):\n";
  for (const auto& [name, help] : dcc::scenario::MobilityModels().List()) {
    os << "  " << name << "\n      " << help << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dcc::scenario;

  std::vector<std::string> spec_args;
  std::string json_path;
  std::string trace_path;
  bool metrics = false;
  bool quiet = false;
  bool canonical = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage(std::cout);
      return 0;
    } else if (arg == "--list") {
      PrintRegistries(std::cout);
      return 0;
    } else if (arg == "--canonical") {
      canonical = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg.rfind("--trace=", 0) == 0) {
      trace_path = arg.substr(8);
      if (trace_path.empty()) {
        std::cerr << "dcc_run: --trace= needs a path\n";
        return 2;
      }
    } else if (arg == "--metrics") {
      metrics = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
      if (json_path.empty()) {
        std::cerr << "dcc_run: --json= needs a path (use - for stdout)\n";
        return 2;
      }
      // JSON on stdout must stay machine-parseable: suppress the text
      // summary instead of interleaving it.
      if (json_path == "-") quiet = true;
    } else {
      spec_args.push_back(arg);
    }
  }

  ScenarioSpec spec;
  std::vector<RunReport> runs;
  try {
    spec = ScenarioSpec::FromArgs(spec_args);
    if (canonical) {
      std::cout << spec.CanonicalKey() << '\n';
      return 0;
    }
    // DCC_ENGINE_MODE / DCC_ENGINE_CELL / DCC_ENGINE_THREADS supply the
    // engine defaults (same knobs as the benches); explicit
    // --engine/--cell/--threads flags win. When any default still comes
    // from the environment, all env knobs are validated — a typo'd value
    // fails loudly even if overridden.
    bool engine_flag = false;
    bool cell_flag = false;
    bool threads_flag = false;
    for (const std::string& a : spec_args) {
      engine_flag = engine_flag || a.rfind("--engine=", 0) == 0;
      cell_flag = cell_flag || a.rfind("--cell=", 0) == 0;
      threads_flag = threads_flag || a.rfind("--threads=", 0) == 0;
    }
    if (!engine_flag || !cell_flag || !threads_flag) {
      const auto env_engine = dcc::sinr::Engine::Options::FromEnv();
      if (!engine_flag) spec.engine.mode = env_engine.mode;
      if (!cell_flag) spec.engine.cell = env_engine.cell;
      if (!threads_flag) spec.engine.threads = env_engine.threads;
    }
    if (!quiet) std::cout << "spec: " << spec.ToString() << '\n';
    if (!trace_path.empty()) dcc::obs::Tracer::Global().Enable();
    runs = RunSweep(spec);
  } catch (const std::exception& e) {
    std::cerr << "dcc_run: " << e.what() << '\n';
    return 2;
  }

  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (!out) {
      std::cerr << "dcc_run: cannot open " << trace_path << '\n';
      return 2;
    }
    const dcc::obs::TraceSummary sum = dcc::obs::Tracer::Global().Drain(out);
    sum.PrintJson(std::cerr);  // dcc.obs.v1; stdout stays report-only
    std::cerr << '\n';
  }
  if (metrics) dcc::obs::MetricsRegistry::Global().PrintText(std::cerr);

  bool all_ok = true;
  for (const RunReport& r : runs) {
    all_ok = all_ok && r.ok;
    if (quiet) continue;
    std::cout << "seed " << r.seed << ": " << (r.ok ? "ok" : "FAILED");
    if (!r.error.empty()) std::cout << " (" << r.error << ')';
    std::cout << '\n';
    r.metrics.Print(std::cout, 2);
  }

  if (!json_path.empty()) {
    if (json_path == "-") {
      PrintSweepJson(std::cout, spec.ToString(), runs);
    } else {
      std::ofstream out(json_path);
      if (!out) {
        std::cerr << "dcc_run: cannot open " << json_path << '\n';
        return 2;
      }
      PrintSweepJson(out, spec.ToString(), runs);
    }
  }
  return all_ok ? 0 : 1;
}
