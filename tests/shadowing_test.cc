// Model misspecification: the paper's analysis assumes exact power-law
// gains. Real radios see per-link shadowing. These tests run the stack on
// perturbed gain matrices (deterministic log-uniform per link) and check
// where the guarantees survive.
#include <gtest/gtest.h>

#include "dcc/bcast/local_broadcast.h"
#include "dcc/cluster/clustering.h"
#include "dcc/cluster/validate.h"
#include "dcc/sinr/engine.h"
#include "dcc/workload/generators.h"

namespace dcc {
namespace {

sinr::Params TestParams() {
  sinr::Params p = sinr::Params::Default();
  p.id_space = 1 << 12;
  return p;
}

TEST(ShadowingTest, GainsPerturbedWithinSpreadAndSymmetric) {
  const auto params = TestParams();
  auto pts = workload::UniformSquare(32, 4.0, 3);
  std::vector<NodeId> ids(32);
  for (int i = 0; i < 32; ++i) ids[static_cast<std::size_t>(i)] = i + 1;
  const sinr::Network base(pts, ids, params);
  const sinr::Network shadowed(pts, ids, params, sinr::Shadowing{0.5, 42});

  for (std::size_t i = 0; i < base.size(); ++i) {
    for (std::size_t j = 0; j < base.size(); ++j) {
      if (i == j) continue;
      const double ratio = shadowed.Gain(i, j) / base.Gain(i, j);
      EXPECT_GE(ratio, 1.0 / 1.5 - 1e-9);
      EXPECT_LE(ratio, 1.5 + 1e-9);
      EXPECT_DOUBLE_EQ(shadowed.Gain(i, j), shadowed.Gain(j, i));
    }
  }
}

TEST(ShadowingTest, DeterministicInSeed) {
  const auto params = TestParams();
  auto pts = workload::UniformSquare(16, 3.0, 5);
  std::vector<NodeId> ids(16);
  for (int i = 0; i < 16; ++i) ids[static_cast<std::size_t>(i)] = i + 1;
  const sinr::Network a(pts, ids, params, sinr::Shadowing{0.3, 7});
  const sinr::Network b(pts, ids, params, sinr::Shadowing{0.3, 7});
  const sinr::Network c(pts, ids, params, sinr::Shadowing{0.3, 8});
  EXPECT_DOUBLE_EQ(a.Gain(0, 1), b.Gain(0, 1));
  EXPECT_NE(a.Gain(0, 1), c.Gain(0, 1));
}

class ShadowedClusteringSweep : public ::testing::TestWithParam<double> {};

TEST_P(ShadowedClusteringSweep, ClusteringSurvivesMildShadowing) {
  const double spread = GetParam();
  const auto params = TestParams();
  auto pts = workload::UniformSquare(96, 4.0, 11);
  std::vector<NodeId> ids(96);
  for (int i = 0; i < 96; ++i) ids[static_cast<std::size_t>(i)] = i + 1;
  const sinr::Network net(pts, ids, params, sinr::Shadowing{spread, 99});
  const auto prof = cluster::Profile::Practical(params.id_space);
  std::vector<std::size_t> all(net.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;

  sim::Exec ex(net);
  const auto res = cluster::BuildClustering(
      ex, prof, all, cluster::SubsetDensity(net, all), 1);
  EXPECT_EQ(res.unassigned, 0u) << "spread=" << spread;
  const auto chk = cluster::CheckClustering(net, all, res.cluster_of);
  // Radius can exceed 1 slightly under shadowing (reception range wobbles
  // by (1+spread)^{1/alpha}); centers separation can shrink likewise.
  const double slack = std::pow(1.0 + spread, 1.0 / params.alpha);
  EXPECT_LE(chk.max_radius, slack + 1e-9) << "spread=" << spread;
  EXPECT_GE(chk.min_center_sep, (1.0 - params.eps) / slack - 1e-9)
      << "spread=" << spread;
}

INSTANTIATE_TEST_SUITE_P(Spreads, ShadowedClusteringSweep,
                         ::testing::Values(0.1, 0.25, 0.5));

TEST(ShadowingTest, LocalBroadcastStillCoversUnderMildShadowing) {
  const auto params = TestParams();
  auto pts = workload::UniformSquare(64, 4.0, 21);
  std::vector<NodeId> ids(64);
  for (int i = 0; i < 64; ++i) ids[static_cast<std::size_t>(i)] = i + 1;
  const sinr::Network net(pts, ids, params, sinr::Shadowing{0.2, 5});
  const auto prof = cluster::Profile::Practical(params.id_space);
  std::vector<std::size_t> all(net.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  sim::Exec ex(net);
  const auto res = bcast::LocalBroadcast(ex, prof, all, 14, 3);
  // The comm graph is defined geometrically (1 - eps), but reception under
  // shadowing can fall short at the fringe; require near-complete
  // coverage and report the short-fall loudly.
  EXPECT_GE(res.covered_cumulative, res.members - 3)
      << res.covered_cumulative << "/" << res.members;
}

}  // namespace
}  // namespace dcc
