// Domain decomposition for the sharded round engine: a ShardPlan partitions
// the spatial grid's row-major tile range [0, n_tiles) into K *contiguous*
// shards. Contiguity is the load-bearing property: every tile belongs to
// exactly one shard, so all listeners of a tile resolve inside one worker —
// the engine's batched fallback then groups and chunks them exactly as the
// serial sweep does, which is what keeps parallel rounds bit-identical to
// serial execution (see engine.h).
//
// Two cut policies:
//  * kEven     — equal-length tile ranges; oblivious to occupancy.
//  * kBalanced — cut at equal cumulative per-tile weight (the engine passes
//    this round's listeners-per-tile histogram), so dense regions don't
//    serialize behind one worker. The plan is a pure function of
//    (n_tiles, shards, weights) — never of thread scheduling — so results
//    stay deterministic and machine-independent.
//
// Plans are cheap (O(n_tiles)) and rebuilt per parallel round: mobility and
// churn move listeners between tiles every epoch, and re-planning from the
// incrementally maintained SpatialGrid re-balances for free.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace dcc::parallel {

enum class ShardPolicy {
  kEven,      // equal tile ranges
  kBalanced,  // equal cumulative weight per shard (default in the engine)
};

class ShardPlan {
 public:
  ShardPlan() = default;

  // Re-plans in place (buffers are reused across rounds). `weights` must
  // have n_tiles entries under kBalanced and is ignored under kEven;
  // `shards` >= 1. Shards may come out empty when shards > n_tiles or the
  // weight mass is concentrated.
  void Reset(int n_tiles, int shards, ShardPolicy policy,
             std::span<const std::uint32_t> weights);

  int shard_count() const { return static_cast<int>(bounds_.size()) - 1; }

  // Shard k covers tiles [begin(k), end(k)).
  int begin(int k) const { return bounds_[static_cast<std::size_t>(k)]; }
  int end(int k) const { return bounds_[static_cast<std::size_t>(k) + 1]; }

  // The shard owning `tile` (bounds are monotone; binary search over K+1
  // entries).
  int ShardOfTile(int tile) const;

  // The raw cut points: bounds()[k] .. bounds()[k+1] is shard k's tile
  // range. The distributed launcher exports these to rank processes, which
  // must agree on the exact cut.
  std::span<const int> bounds() const { return bounds_; }

 private:
  // bounds_[0] = 0 <= bounds_[1] <= ... <= bounds_[K] = n_tiles.
  std::vector<int> bounds_;
};

}  // namespace dcc::parallel
