file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_profile.dir/bench/bench_ablation_profile.cc.o"
  "CMakeFiles/bench_ablation_profile.dir/bench/bench_ablation_profile.cc.o.d"
  "bench_ablation_profile"
  "bench_ablation_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
