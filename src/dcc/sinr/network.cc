#include "dcc/sinr/network.h"

#include <algorithm>
#include <queue>

namespace dcc::sinr {

Network::Network(std::vector<Vec2> positions, std::vector<NodeId> ids,
                 Params params, Shadowing shadowing)
    : Network(std::move(positions), std::move(ids), params,
              MakeDefaultModel(params, shadowing)) {}

Network::Network(std::vector<Vec2> positions, std::vector<NodeId> ids,
                 Params params,
                 std::shared_ptr<const PropagationModel> model)
    : pos_(std::move(positions)),
      ids_(std::move(ids)),
      params_(params),
      model_(std::move(model)) {
  DCC_REQUIRE(model_ != nullptr, "Network: propagation model must be non-null");
  params_.Validate();
  DCC_REQUIRE(pos_.size() == ids_.size(),
              "Network: positions and ids must have equal length");
  index_of_.reserve(ids_.size());
  for (std::size_t i = 0; i < ids_.size(); ++i) {
    DCC_REQUIRE(ids_[i] >= 1 && ids_[i] <= params_.id_space,
                "Network: node id out of [1, id_space]");
    const bool inserted = index_of_.emplace(ids_[i], i).second;
    DCC_REQUIRE(inserted, "Network: duplicate node id");
  }
  const std::size_t n = pos_.size();
  if (n > 0 && n <= kGainMatrixLimit) {
    gain_.assign(n * n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const double g = ComputeGain(i, j);
        gain_[i * n + j] = g;
        gain_[j * n + i] = g;
      }
    }
  }
}

Network Network::WithSequentialIds(std::vector<Vec2> positions,
                                   Params params) {
  std::vector<NodeId> ids(positions.size());
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<NodeId>(i + 1);
  return Network(std::move(positions), std::move(ids), params);
}

void Network::SetPositions(std::span<const Vec2> pts) {
  DCC_REQUIRE(pts.size() == pos_.size(),
              "SetPositions: size mismatch (node count is fixed)");
  ++generation_;
  std::copy(pts.begin(), pts.end(), pos_.begin());
  comm_graph_.clear();
  const std::size_t n = pos_.size();
  if (!gain_.empty()) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const double g = ComputeGain(i, j);
        gain_[i * n + j] = g;
        gain_[j * n + i] = g;
      }
    }
  }
}

void Network::SetPosition(std::size_t i, Vec2 p) {
  DCC_REQUIRE(i < pos_.size(), "SetPosition: bad node index");
  ++generation_;
  pos_[i] = p;
  comm_graph_.clear();
  const std::size_t n = pos_.size();
  if (!gain_.empty()) {
    for (std::size_t j = 0; j < n; ++j) {
      const double g = ComputeGain(i, j);
      gain_[i * n + j] = g;
      gain_[j * n + i] = g;
    }
  }
}

std::size_t Network::IndexOf(NodeId id) const {
  const auto it = index_of_.find(id);
  DCC_REQUIRE(it != index_of_.end(), "Network::IndexOf: unknown id");
  return it->second;
}

double Network::ComputeGain(std::size_t i, std::size_t j) const {
  if (i == j) return 0.0;
  return model_->Gain(pos_[i], pos_[j], ids_[i], ids_[j]);
}

const std::vector<std::vector<std::size_t>>& Network::CommGraph() const {
  if (comm_graph_.empty() && !pos_.empty()) {
    const double r = params_.CommRadius();
    comm_graph_.resize(pos_.size());
    const PointGrid grid(pos_, std::max(r, 1e-9));
    for (std::size_t i = 0; i < pos_.size(); ++i) {
      grid.ForNear(pos_[i], r, [&](std::size_t j) {
        if (j != i) comm_graph_[i].push_back(j);
      });
      std::sort(comm_graph_[i].begin(), comm_graph_[i].end());
    }
  }
  return comm_graph_;
}

int Network::MaxDegree() const {
  int deg = 0;
  for (const auto& adj : CommGraph()) {
    deg = std::max(deg, static_cast<int>(adj.size()));
  }
  return deg;
}

int Network::Density() const { return UnitBallDensity(pos_, 1.0); }

std::vector<int> Network::HopDistances(std::size_t src) const {
  DCC_REQUIRE(src < pos_.size(), "HopDistances: bad source index");
  const auto& g = CommGraph();
  std::vector<int> dist(pos_.size(), -1);
  std::queue<std::size_t> q;
  dist[src] = 0;
  q.push(src);
  while (!q.empty()) {
    const std::size_t v = q.front();
    q.pop();
    for (std::size_t w : g[v]) {
      if (dist[w] < 0) {
        dist[w] = dist[v] + 1;
        q.push(w);
      }
    }
  }
  return dist;
}

int Network::Diameter() const {
  if (pos_.empty()) return -1;
  // Exact diameter via all-sources BFS is O(n * m); fine at our scales.
  int best = 0;
  for (std::size_t s = 0; s < pos_.size(); ++s) {
    const auto dist = HopDistances(s);
    for (int d : dist) best = std::max(best, d);
  }
  return best;
}

bool Network::Connected() const {
  if (pos_.empty()) return true;
  const auto dist = HopDistances(0);
  return std::none_of(dist.begin(), dist.end(), [](int d) { return d < 0; });
}

}  // namespace dcc::sinr
