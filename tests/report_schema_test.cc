// Pins docs/REPORT_SCHEMA.md to the code: every pinned example in the doc
// is regenerated here from a fixed spec and must match byte for byte. If a
// schema change breaks this test, update BOTH the emitter and the doc (and
// bump the schema version if the change is not additive).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "dcc/obs/trace.h"
#include "dcc/scenario/scenario.h"
#include "dcc/service/service.h"
#include "dcc/service/stats.h"

namespace dcc::scenario {
namespace {

#ifndef DCC_SOURCE_DIR
#error "DCC_SOURCE_DIR must point at the repo root (set by CMakeLists.txt)"
#endif

std::string ReadDoc() {
  const std::string path = std::string(DCC_SOURCE_DIR) +
                           "/docs/REPORT_SCHEMA.md";
  std::ifstream in(path);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Extracts the ```json fence that follows `<!-- pinned:NAME -->`.
std::string PinnedExample(const std::string& doc, const std::string& name) {
  const std::string marker = "<!-- pinned:" + name + " -->";
  const std::size_t at = doc.find(marker);
  EXPECT_NE(at, std::string::npos) << "no pinned example for " << name;
  if (at == std::string::npos) return "";
  const std::size_t fence = doc.find("```json\n", at);
  EXPECT_NE(fence, std::string::npos) << "no ```json fence after " << marker;
  const std::size_t start = fence + 8;
  const std::size_t end = doc.find("\n```", start);
  EXPECT_NE(end, std::string::npos) << "unterminated fence for " << name;
  return doc.substr(start, end - start);
}

// The fixed scenario behind the static examples.
ScenarioSpec PinnedStaticSpec() {
  ScenarioSpec spec;
  spec.topology_params.Set("n", "12");
  spec.topology_params.Set("side", "2");
  spec.sinr.id_space = 256;
  return spec;
}

// ...and the dynamic one.
ScenarioSpec PinnedDynamicSpec() {
  ScenarioSpec spec = PinnedStaticSpec();
  spec.dynamics.Set("model", "waypoint");
  spec.dynamics.Set("epochs", "2");
  spec.dynamics.Set("speed", "0.5");
  spec.dynamics.Set("churn", "0.2");
  spec.dynamics.Set("side", "2");
  return spec;
}

TEST(ReportSchemaDocTest, RunReportExampleIsCurrent) {
  const RunReport rep = RunScenario(PinnedStaticSpec(), 1);
  ASSERT_TRUE(rep.ok) << rep.error;
  std::ostringstream out;
  rep.PrintJson(out);
  EXPECT_EQ(PinnedExample(ReadDoc(), "dcc.run_report.v1"), out.str());
}

TEST(ReportSchemaDocTest, SweepExampleIsCurrent) {
  ScenarioSpec spec = PinnedStaticSpec();
  spec.seeds = {1, 2};
  const auto runs = RunSweep(spec);
  std::ostringstream out;
  PrintSweepJson(out, spec.ToString(), runs);
  // PrintSweepJson terminates the envelope with a newline; the fence holds
  // the line itself.
  std::string line = out.str();
  ASSERT_FALSE(line.empty());
  ASSERT_EQ(line.back(), '\n');
  line.pop_back();
  EXPECT_EQ(PinnedExample(ReadDoc(), "dcc.sweep.v1"), line);
}

TEST(ReportSchemaDocTest, ParallelExampleIsCurrent) {
  ScenarioSpec spec = PinnedStaticSpec();
  spec.threads = 2;
  spec.engine.threads = 2;  // what --threads=2 sets
  spec.engine.mode = sinr::Engine::Mode::kGrid;  // what --engine=grid sets
  spec.engine.prologue_cache = 8;  // what --prologue-cache=8 sets
  const RunReport rep = RunScenario(spec, 1);
  ASSERT_TRUE(rep.ok) << rep.error;
  std::ostringstream out;
  rep.PrintJson(out);
  EXPECT_EQ(PinnedExample(ReadDoc(), "dcc.parallel.v1"), out.str());
}

TEST(ReportSchemaDocTest, ServiceStatsExampleIsCurrent) {
  // A synthesized snapshot: live stats carry timing-dependent fields
  // (uptime, throughput, latencies), so the doc pins fixed values through
  // the same serializer dccd uses.
  dcc::service::ServiceStats s;
  s.uptime_ms = 120000;
  s.connections_active = 2;
  s.connections_total = 5;
  s.requests = 40;
  s.runs = 32;
  s.errors = 1;
  s.result_hits = 24;
  s.result_misses = 8;
  s.topology_hits = 6;
  s.topology_misses = 2;
  s.queue_depth = 0;
  s.queue_peak = 3;
  s.queue_capacity = 64;
  s.throughput_rps = 0.25;
  s.latency_ms_p50 = 0.032;
  s.latency_ms_p99 = 524.288;
  s.draining = false;
  std::ostringstream out;
  s.PrintJson(out);
  EXPECT_EQ(PinnedExample(ReadDoc(), "dcc.service.v1"), out.str());
}

TEST(ReportSchemaDocTest, DistribExampleIsCurrent) {
  // Real rank processes: the launcher resolves build/dcc_rank next to this
  // test binary. Every distrib field is a pure function of the round
  // content, so the whole section pins byte-for-byte.
  ScenarioSpec spec = PinnedStaticSpec();
  spec.engine.mode = sinr::Engine::Mode::kGrid;  // what --engine=grid sets
  spec.ranks = 2;
  const RunReport rep = RunScenario(spec, 1);
  ASSERT_TRUE(rep.ok) << rep.error;
  std::ostringstream out;
  rep.PrintJson(out);
  EXPECT_EQ(PinnedExample(ReadDoc(), "dcc.distrib.v1"), out.str());
}

TEST(ReportSchemaDocTest, DrainingFrameExampleIsCurrent) {
  EXPECT_EQ(PinnedExample(ReadDoc(), "dcc.service.draining"),
            dcc::service::Service::ErrorFrame(
                7, "draining", "service is draining; no new runs are admitted"));
}

TEST(ReportSchemaDocTest, ObsSummaryExampleIsCurrent) {
  // Synthesized like the service stats: every field except overhead_ns is
  // deterministic for a deterministic workload, but the doc pins fixed
  // values through the same serializer dcc_run and dccd print.
  obs::TraceSummary sum;
  sum.events = 4096;
  sum.spans = 1500;
  sum.counters = 96;
  sum.dropped = 0;
  sum.threads = 4;
  sum.ranks = 2;
  sum.overhead_ns = 2048;
  std::ostringstream out;
  sum.PrintJson(out);
  EXPECT_EQ(PinnedExample(ReadDoc(), "dcc.obs.v1"), out.str());
}

TEST(ReportSchemaDocTest, DynamicExampleIsCurrent) {
  const RunReport rep = RunScenario(PinnedDynamicSpec(), 1);
  ASSERT_TRUE(rep.ok) << rep.error;
  std::ostringstream out;
  rep.PrintJson(out);
  EXPECT_EQ(PinnedExample(ReadDoc(), "dcc.dynamic.v1"), out.str());
}

}  // namespace
}  // namespace dcc::scenario
