#include "dcc/obs/metrics.h"

#include <cstdio>
#include <ostream>

namespace dcc::obs {

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::Entry& MetricsRegistry::GetEntry(std::string_view name,
                                                  std::string_view help,
                                                  Kind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry entry;
    entry.kind = kind;
    entry.help = std::string(help);
    switch (kind) {
      case Kind::kCounter:
        entry.counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        entry.gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        entry.histogram = std::make_unique<Pow2Histogram>();
        break;
    }
    it = metrics_.emplace(std::string(name), std::move(entry)).first;
  }
  return it->second;
}

Counter& MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view help) {
  Entry& e = GetEntry(name, help, Kind::kCounter);
  if (e.kind != Kind::kCounter) {
    // Same name registered with a different kind is a programming error;
    // keep the process alive but quarantine the updates.
    static Counter fallback;
    std::fprintf(stderr, "obs: metric %.*s is not a counter\n",
                 static_cast<int>(name.size()), name.data());
    return fallback;
  }
  return *e.counter;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name, std::string_view help) {
  Entry& e = GetEntry(name, help, Kind::kGauge);
  if (e.kind != Kind::kGauge) {
    static Gauge fallback;
    std::fprintf(stderr, "obs: metric %.*s is not a gauge\n",
                 static_cast<int>(name.size()), name.data());
    return fallback;
  }
  return *e.gauge;
}

Pow2Histogram& MetricsRegistry::GetHistogram(std::string_view name,
                                             std::string_view help) {
  Entry& e = GetEntry(name, help, Kind::kHistogram);
  if (e.kind != Kind::kHistogram) {
    static Pow2Histogram fallback;
    std::fprintf(stderr, "obs: metric %.*s is not a histogram\n",
                 static_cast<int>(name.size()), name.data());
    return fallback;
  }
  return *e.histogram;
}

void MetricsRegistry::PrintText(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, e] : metrics_) {
    os << "# HELP " << name << ' ' << e.help << '\n';
    switch (e.kind) {
      case Kind::kCounter:
        os << "# TYPE " << name << " counter\n"
           << name << ' ' << e.counter->value() << '\n';
        break;
      case Kind::kGauge:
        os << "# TYPE " << name << " gauge\n"
           << name << ' ' << e.gauge->value() << '\n';
        break;
      case Kind::kHistogram: {
        os << "# TYPE " << name << " histogram\n";
        const auto snap = e.histogram->SnapshotBuckets();
        int last = -1;
        std::int64_t total = 0;
        for (int i = 0; i < Pow2Histogram::kBuckets; ++i) {
          total += snap[static_cast<std::size_t>(i)];
          if (snap[static_cast<std::size_t>(i)] > 0) last = i;
        }
        std::int64_t cum = 0;
        for (int i = 0; i <= last; ++i) {
          cum += snap[static_cast<std::size_t>(i)];
          os << name << "_bucket{le=\"" << Pow2Histogram::BucketUpper(i)
             << "\"} " << cum << '\n';
        }
        os << name << "_bucket{le=\"+Inf\"} " << total << '\n'
           << name << "_sum " << e.histogram->sum() << '\n'
           << name << "_count " << total << '\n';
        break;
      }
    }
  }
}

}  // namespace dcc::obs
