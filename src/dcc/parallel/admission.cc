#include "dcc/parallel/admission.h"

#include <algorithm>

#include "dcc/common/types.h"
#include "dcc/obs/trace.h"

namespace dcc::parallel {

AdmissionQueue::AdmissionQueue(WorkerPool& pool, int capacity)
    : pool_(pool), capacity_(capacity) {
  DCC_REQUIRE(capacity >= 1, "admission: capacity must be >= 1");
}

bool AdmissionQueue::Execute(const std::function<void()>& fn) {
  {
    // Queue residency: the span is the time this admitter spent blocked
    // on a full queue (zero-length when a slot was free).
    DCC_TRACE_SPAN("admission.wait");
    std::unique_lock<std::mutex> lock(mu_);
    slot_cv_.wait(lock, [&] { return draining_ || depth_ < capacity_; });
    if (draining_) return false;
    ++depth_;
    peak_depth_ = std::max(peak_depth_, depth_);
    DCC_TRACE_COUNTER("admission.depth", depth_);
  }
  DCC_TRACE_SPAN("admission.run");
  // Release the slot whatever the job does — Wait() rethrows its exception.
  struct SlotGuard {
    AdmissionQueue* q;
    ~SlotGuard() {
      std::lock_guard<std::mutex> lock(q->mu_);
      --q->depth_;
      q->slot_cv_.notify_one();
    }
  } guard{this};
  WorkerPool::TaskHandle handle = pool_.Submit(fn);
  handle.Wait();
  return true;
}

void AdmissionQueue::Drain() {
  std::lock_guard<std::mutex> lock(mu_);
  draining_ = true;
  slot_cv_.notify_all();
}

int AdmissionQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return depth_;
}

int AdmissionQueue::peak_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_depth_;
}

}  // namespace dcc::parallel
