// Strongly-selective families (ssf), the classic tool behind the Sparse
// Network Schedule (Lemma 4).
//
// An (N,k)-ssf is a sequence S_1..S_m of subsets of [N] such that for every
// X subset of [N] with |X| <= k and every x in X, some S_i has
// S_i ∩ X = {x}.
//
// Construction (deterministic, folklore from [6]): pick a threshold T and
// take the family { S_{p,r} : p prime in (T, 2T], 0 <= r < p } with
// S_{p,r} = { x in [N] : x mod p == r }. For x,y distinct in [N], the primes
// p > T dividing |x-y| number fewer than log_T N, so if the prime count in
// (T, 2T] exceeds (k-1) * ceil(log_T N), then for any |X| <= k and x in X
// some prime p isolates x from X and S_{p, x mod p} selects x. We pick the
// smallest such T numerically at construction time, which yields
// m = sum of primes = O(k^2 log^2 N / log(k log N)) sets — the O(k^2 log N)
// regime of [6] up to a log factor, fully deterministic and verifiable.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "dcc/common/types.h"

namespace dcc::sel {

class Ssf {
 public:
  // Builds an (N,k)-ssf. Requires N >= 1, 1 <= k.
  static Ssf Construct(std::int64_t N, int k);

  // Number of sets (schedule length).
  std::int64_t size() const { return size_; }

  // Is x in S_i? x in [1, N], i in [0, size()).
  bool Member(std::int64_t i, std::int64_t x) const;

  // (prime, residue) defining S_i — exposed for tests and analysis.
  std::pair<std::int64_t, std::int64_t> SetParams(std::int64_t i) const;

  std::int64_t N() const { return n_; }
  int k() const { return k_; }
  const std::vector<std::int64_t>& primes() const { return primes_; }

 private:
  Ssf() = default;

  std::int64_t n_ = 0;
  int k_ = 0;
  std::vector<std::int64_t> primes_;
  std::vector<std::int64_t> prefix_;  // prefix_[j] = rounds before primes_[j]
  std::int64_t size_ = 0;
};

}  // namespace dcc::sel
