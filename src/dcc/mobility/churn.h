// Node churn: a Poisson join/leave process over a fixed node population.
//
// Churn is modeled as *activity*, not allocation: every node keeps its
// slot, id and gain-matrix row for the whole run, and the process toggles
// an active mask. That keeps the simulator allocation-free across epochs —
// a leave is an O(1) SpatialGrid::Erase, a join an O(1) Insert plus a
// Respawn from the mobility model — while protocol code simply never sees
// inactive nodes in its member set.
//
// Per epoch of length dt, each active node leaves with probability
// 1 - exp(-leave_rate * dt) and each inactive node rejoins with probability
// 1 - exp(-join_rate * dt) (the discrete-time view of independent Poisson
// clocks). The process never drains the network: at least one node always
// stays active.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dcc/common/rng.h"

namespace dcc::mobility {

class ChurnProcess {
 public:
  // Rates are events per node per unit time; both must be >= 0 (zero
  // disables that direction).
  ChurnProcess(double leave_rate, double join_rate, std::uint64_t seed);

  // The epoch's membership changes, as node indices (ascending).
  struct Delta {
    std::vector<std::size_t> left;
    std::vector<std::size_t> joined;
    void Clear() {
      left.clear();
      joined.clear();
    }
  };

  // Advances one epoch: flips entries of `active` in place and records the
  // flips into `delta` (cleared first; buffers are reused across epochs).
  void Step(double dt, std::span<char> active, Delta& delta);

 private:
  double leave_rate_;
  double join_rate_;
  Xoshiro256ss rng_;
};

}  // namespace dcc::mobility
