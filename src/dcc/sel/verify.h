// Property verifiers for the selector structures. The ssf verifier is
// exhaustive (the construction is provable, the verifier is a test oracle
// for small instances); the wss/wcss verifiers are Monte-Carlo: they sample
// random (X, x, y[, C]) instances and report the fraction satisfied.
#pragma once

#include <cstdint>

#include "dcc/common/rng.h"
#include "dcc/sel/ssf.h"
#include "dcc/sel/wcss.h"
#include "dcc/sel/wss.h"

namespace dcc::sel {

struct VerifyResult {
  std::int64_t trials = 0;
  std::int64_t failures = 0;
  double FailureRate() const {
    return trials == 0 ? 0.0 : static_cast<double>(failures) / static_cast<double>(trials);
  }
  bool AllSatisfied() const { return failures == 0; }
};

// Exhaustively checks the strong-selection property of `s` for every
// X subset of [1..N] with |X| <= k and every x in X. Exponential in N;
// requires N <= 20.
VerifyResult VerifySsfExhaustive(const Ssf& s);

// Samples `trials` random instances (X of size k, x in X, y outside X) and
// checks the witnessed-selection property.
VerifyResult VerifyWssSampled(const Wss& w, std::int64_t trials,
                              std::uint64_t seed);

// Samples `trials` random instances (cluster phi, conflict set C of size l,
// X of size k inside phi, x in X, y in phi \ X) and checks the
// witnessed-cluster-aware property.
VerifyResult VerifyWcssSampled(const Wcss& w, std::int64_t trials,
                               std::uint64_t seed);

}  // namespace dcc::sel
