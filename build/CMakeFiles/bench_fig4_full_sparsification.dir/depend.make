# Empty dependencies file for bench_fig4_full_sparsification.
# This may be replaced when dependencies are built.
