#include "dcc/scenario/dynamics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "dcc/common/rng.h"
#include "dcc/scenario/scenario.h"
#include "dcc/sinr/engine.h"
#include "dcc/workload/generators.h"

namespace dcc::scenario {
namespace {

ScenarioSpec SmallDynamicSpec() {
  ScenarioSpec spec;
  spec.topology_params.Set("n", "40");
  spec.topology_params.Set("side", "4");
  spec.sinr.id_space = 4096;
  spec.dynamics.Set("model", "waypoint");
  spec.dynamics.Set("epochs", "3");
  spec.dynamics.Set("speed", "0.5");
  spec.dynamics.Set("churn", "0.1");
  spec.dynamics.Set("side", "4");
  return spec;
}

TEST(DynamicsTest, EveryEpochProducesAValidClustering) {
  const auto spec = SmallDynamicSpec();
  const RunReport rep = RunScenario(spec, 1);
  ASSERT_TRUE(rep.ok) << rep.error;
  EXPECT_EQ(rep.dynamic.model, "waypoint");
  ASSERT_EQ(rep.dynamic.epochs.size(), 3u);
  for (const auto& em : rep.dynamic.epochs) {
    EXPECT_EQ(em.Get("unassigned"), 0.0);
    EXPECT_EQ(em.Get("ok"), 1.0);
    EXPECT_GE(em.Get("members"), 1.0);
    EXPECT_GT(em.Get("rounds"), 0.0);
  }
  // Epoch 0 has no predecessor; every later epoch reports survival in [0,1].
  EXPECT_FALSE(rep.dynamic.epochs[0].Has("survival"));
  for (std::size_t e = 1; e < rep.dynamic.epochs.size(); ++e) {
    const double s = rep.dynamic.epochs[e].Get("survival");
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
  EXPECT_EQ(rep.metrics.Get("epochs"), 3.0);
  EXPECT_GT(rep.metrics.Get("rounds_total"), 0.0);
}

TEST(DynamicsTest, GridEngineMatchesExactOnMovingNetwork) {
  // The same dynamic scenario under both interference strategies: the
  // incrementally maintained spatial index must reproduce the exact
  // engine's protocol execution epoch for epoch, metric for metric.
  auto spec = SmallDynamicSpec();
  spec.dynamics.Set("model", "walk");
  spec.engine.mode = sinr::Engine::Mode::kExact;
  const RunReport exact = RunScenario(spec, 2);
  spec.engine.mode = sinr::Engine::Mode::kGrid;
  const RunReport grid = RunScenario(spec, 2);
  ASSERT_TRUE(exact.ok) << exact.error;
  ASSERT_TRUE(grid.ok) << grid.error;
  ASSERT_EQ(exact.dynamic.epochs.size(), grid.dynamic.epochs.size());
  for (std::size_t e = 0; e < exact.dynamic.epochs.size(); ++e) {
    EXPECT_EQ(exact.dynamic.epochs[e].entries(),
              grid.dynamic.epochs[e].entries())
        << "epoch " << e;
  }
  EXPECT_EQ(exact.metrics.entries(), grid.metrics.entries());
}

TEST(DynamicsTest, EngineStepMatchesExactWhileNodesMove) {
  // Engine-level pin: random per-round motion with SyncIndex against a
  // fresh exact engine each round.
  const int n = 220;
  const double side = 9.0;
  auto pts = workload::UniformSquare(n, side, 21);
  sinr::Network net = workload::MakeNetwork(pts, sinr::Params::Default(), 22);

  sinr::Engine::Options grid_opts;
  grid_opts.mode = sinr::Engine::Mode::kGrid;
  grid_opts.cell = 1.5;
  grid_opts.coverage = Box{{0.0, 0.0}, {side, side}};
  sinr::Engine grid_engine(net, grid_opts);
  sinr::Engine::Options exact_opts;
  exact_opts.mode = sinr::Engine::Mode::kExact;
  sinr::Engine exact_engine(net, exact_opts);

  Xoshiro256ss rng(23);
  std::vector<sinr::Reception> out_grid, out_exact;
  for (int round = 0; round < 40; ++round) {
    for (auto& p : pts) {
      p.x = std::clamp(p.x + 0.4 * (2.0 * rng.NextDouble() - 1.0), 0.0, side);
      p.y = std::clamp(p.y + 0.4 * (2.0 * rng.NextDouble() - 1.0), 0.0, side);
    }
    net.SetPositions(pts);
    grid_engine.SyncIndex();

    std::vector<std::size_t> tx, listeners;
    for (std::size_t i = 0; i < static_cast<std::size_t>(n); ++i) {
      (rng.NextBelow(8) == 0 ? tx : listeners).push_back(i);
    }
    if (tx.empty()) tx.push_back(listeners.back()), listeners.pop_back();
    grid_engine.StepInto(tx, listeners, out_grid);
    exact_engine.StepInto(tx, listeners, out_exact);

    ASSERT_EQ(out_grid.size(), out_exact.size()) << "round " << round;
    auto key = [](const sinr::Reception& r) {
      return std::pair(r.listener, r.sender);
    };
    auto by_key = [&](const sinr::Reception& a, const sinr::Reception& b) {
      return key(a) < key(b);
    };
    std::sort(out_grid.begin(), out_grid.end(), by_key);
    std::sort(out_exact.begin(), out_exact.end(), by_key);
    for (std::size_t i = 0; i < out_grid.size(); ++i) {
      EXPECT_EQ(key(out_grid[i]), key(out_exact[i])) << "round " << round;
      EXPECT_NEAR(out_grid[i].sinr, out_exact[i].sinr,
                  1e-9 * out_exact[i].sinr);
    }
  }
}

TEST(DynamicsTest, ChurnedNodesLeaveAndRejoinTheIndex) {
  auto spec = SmallDynamicSpec();
  spec.dynamics.Set("epochs", "6");
  spec.dynamics.Set("churn", "0.4");
  spec.engine.mode = sinr::Engine::Mode::kGrid;
  const RunReport rep = RunScenario(spec, 5);
  ASSERT_TRUE(rep.ok) << rep.error;
  // With churn this aggressive some epoch must have seen movement in the
  // member count, and every epoch still clusters all members.
  double joined = 0, left = 0;
  for (const auto& em : rep.dynamic.epochs) {
    EXPECT_EQ(em.Get("unassigned"), 0.0);
    joined += em.Get("joined");
    left += em.Get("left");
  }
  EXPECT_GT(joined + left, 0.0);
}

TEST(DynamicsTest, UnknownDynamicsKeysAreRejected) {
  auto spec = SmallDynamicSpec();
  spec.dynamics.Set("bogus", "1");
  const RunReport rep = RunScenario(spec, 1);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("bogus"), std::string::npos) << rep.error;
}

TEST(DynamicsTest, UnknownModelListsRegisteredOnes) {
  auto spec = SmallDynamicSpec();
  spec.dynamics.Set("model", "teleport");
  const RunReport rep = RunScenario(spec, 1);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("waypoint"), std::string::npos) << rep.error;
}

TEST(DynamicsTest, DynamicsRequireClusteringAndNoFaults) {
  auto spec = SmallDynamicSpec();
  spec.algo = "local_broadcast";
  EXPECT_FALSE(RunScenario(spec, 1).ok);
  spec.algo = "clustering";
  spec.faults = 2;
  EXPECT_FALSE(RunScenario(spec, 1).ok);
}

TEST(DynamicsTest, SpecRoundTripsThroughFlags) {
  const auto spec = SmallDynamicSpec();
  EXPECT_TRUE(IsDynamic(spec));
  const ScenarioSpec parsed = ScenarioSpec::FromArgs(spec.ToArgs());
  EXPECT_EQ(parsed, spec);
  EXPECT_EQ(parsed.dynamics, spec.dynamics);
  EXPECT_FALSE(IsDynamic(ScenarioSpec{}));
  EXPECT_THROW(ScenarioSpec::FromArgs({"--dynamics="}), InvalidArgument);
  // Strict ParamMap grammar: a trailing comma is malformed, not ignored.
  EXPECT_THROW(ScenarioSpec::FromArgs({"--dynamics=model=waypoint,"}),
               InvalidArgument);
}

TEST(DynamicsTest, RunsAreSeedDeterministic) {
  const auto spec = SmallDynamicSpec();
  const RunReport a = RunScenario(spec, 9);
  const RunReport b = RunScenario(spec, 9);
  std::ostringstream ja, jb;
  a.PrintJson(ja);
  b.PrintJson(jb);
  EXPECT_EQ(ja.str(), jb.str());
}

}  // namespace
}  // namespace dcc::scenario
