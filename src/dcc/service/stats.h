// The service's observability surface: a lock-free latency histogram fed
// by every request, and the `dcc.service.v1` stats section the daemon
// serves for the `stats` op (and prints on clean shutdown). The section
// layout is pinned byte-for-byte in docs/REPORT_SCHEMA.md by
// tests/report_schema_test.cc — treat field changes as schema changes.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>

namespace dcc::service {

// Power-of-two-bucketed request latencies: bucket i counts requests in
// [2^i, 2^(i+1)) microseconds (bucket 0 includes sub-microsecond).
// Recording is a single relaxed increment, so connection threads never
// contend; quantiles are read from a snapshot and reported as the upper
// bound of the covering bucket — coarse (factor-of-two) but stable, which
// is the right trade for a p99 whose job is trend detection.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 40;

  void Record(std::int64_t micros);

  // Upper bound, in milliseconds, of the bucket containing quantile `q`
  // (0 < q <= 1) — 0 when nothing was recorded yet.
  double QuantileUpperMs(double q) const;

  std::int64_t count() const;

 private:
  std::array<std::atomic<std::int64_t>, kBuckets> buckets_{};
};

// One snapshot of the service counters ("dcc.service.v1"). Assembled by
// Service::Snapshot(); a plain value so tests can pin the JSON layout
// deterministically.
struct ServiceStats {
  std::int64_t uptime_ms = 0;
  std::int64_t connections_active = 0;
  std::int64_t connections_total = 0;
  std::int64_t requests = 0;  // every frame answered (runs + stats + pings)
  std::int64_t runs = 0;      // run ops that produced a report
  std::int64_t errors = 0;    // requests answered with ok = false
  std::int64_t result_hits = 0;
  std::int64_t result_misses = 0;
  std::int64_t topology_hits = 0;
  std::int64_t topology_misses = 0;
  std::int64_t queue_depth = 0;
  std::int64_t queue_peak = 0;
  std::int64_t queue_capacity = 0;
  double throughput_rps = 0.0;  // requests / uptime
  double latency_ms_p50 = 0.0;
  double latency_ms_p99 = 0.0;
  bool draining = false;

  // {"schema": "dcc.service.v1", ...} — one object, no trailing newline.
  // Hit rates are emitted as derived fields (0 when a cache was never
  // consulted).
  void PrintJson(std::ostream& os) const;
};

}  // namespace dcc::service
