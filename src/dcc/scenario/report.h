// Structured result of one scenario run: the spec coordinates that produced
// it, a pass/fail verdict from the algorithm's validator, and a named-metric
// recorder (round counts, validation measurements, diagnostics). Serializes
// to schema-stable JSON ("dcc.run_report.v1") for downstream tooling.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "dcc/stats/recorder.h"

namespace dcc::sinr {
class Engine;
}  // namespace dcc::sinr

namespace dcc::distrib {
class Session;
}  // namespace dcc::distrib

namespace dcc::scenario {

struct RunReport {
  std::string topology;
  std::string algo;
  std::uint64_t seed = 0;
  // Verdict of the algorithm's own validation (geometric postconditions,
  // coverage, agreement...). A run that threw has ok = false and `error`.
  bool ok = false;
  std::string error;
  stats::Recorder metrics;

  // Dynamic runs only ("dcc.dynamic.v1"): one metric set per epoch
  // (rounds, clusters, unassigned, survival...). Static runs leave it
  // empty and the JSON omits the section entirely.
  struct DynamicSection {
    std::string model;          // mobility model name
    double epoch_len = 0.0;     // simulated time per epoch
    std::vector<stats::Recorder> epochs;
    bool empty() const { return epochs.empty(); }
  };
  DynamicSection dynamic;

  // Parallel engines only ("dcc.parallel.v1", emitted when the run's
  // engine decomposed rounds into shards): how the round work spread
  // across them. Serial runs leave it empty and the JSON omits the
  // section entirely.
  struct ParallelSection {
    int threads = 0;  // resolved shard count (Engine::threads())
    std::int64_t rounds_parallel = 0;  // rounds dispatched across shards
    // Rounds a parallel engine ran inline because dispatching could not
    // win: under the listener grain, an indivisible tile plan, or the
    // engine nested inside a pool-occupying sweep.
    std::int64_t rounds_serial = 0;
    // Cumulative listeners resolved by each shard index, and the load
    // skew max/mean (1 = perfectly balanced; 0 when no round dispatched).
    std::vector<std::int64_t> shard_load;
    double imbalance = 0.0;
    // Round pipeline (Options::pipeline): rounds whose prologue came from
    // a validated SetNextRound speculation (deterministic), and the wall
    // time of builds that genuinely overlapped shard execution
    // (timing-dependent). 0/0 with the pipeline off.
    std::int64_t rounds_pipelined = 0;
    std::int64_t prologue_overlap_ns = 0;
    // Shard tickets this engine's fan-outs had stolen from another
    // worker's deque (nested engines donating idle sweep workers;
    // deterministically 0 for a top-level engine).
    std::int64_t steal_count = 0;
    // Per-listener-tile far-field states built in round prologues vs read
    // back from the prologue cache (both deterministic: pure functions of
    // the round schedule and the cache capacity).
    std::int64_t tile_states_computed = 0;
    std::int64_t tile_states_reused = 0;
    // Prologue-cache probes (0/0 with --prologue-cache=0).
    std::int64_t prologue_cache_hits = 0;
    std::int64_t prologue_cache_misses = 0;
    bool empty() const { return threads == 0; }
  };
  ParallelSection parallel;

  // Distributed runs only ("dcc.distrib.v1", emitted when the run executed
  // across rank processes via --ranks): the halo exchange ledger. Every
  // field is a pure function of the round content — never of timing — so
  // the section is byte-pinnable (docs/REPORT_SCHEMA.md).
  struct DistribSection {
    int ranks = 0;                 // rank process count
    std::int64_t rounds = 0;       // rounds shipped to the ranks
    std::int64_t halo_tiles = 0;   // near CSR slices sent (sum over ranks)
    std::int64_t halo_bytes = 0;   // round frame payload bytes sent
    std::int64_t reply_bytes = 0;  // reply frame payload bytes received
    // Cumulative owned listeners per rank, and the load skew max/mean
    // (1 = perfectly balanced; 0 when no round shipped).
    std::vector<std::int64_t> rank_load;
    double imbalance = 0.0;
    bool empty() const { return ranks == 0; }
  };
  DistribSection distrib;

  void PrintJson(std::ostream& os) const;
};

// Fills rep.parallel from a parallel engine's cumulative stats; a no-op
// for serial engines (threads() <= 1), leaving the section empty.
void FillParallelSection(RunReport& rep, const sinr::Engine& engine);

// Fills rep.distrib from a distributed session's accounting; a no-op when
// the session never shipped a round (the section stays empty).
void FillDistribSection(RunReport& rep, const distrib::Session& session);

// Sweep envelope ("dcc.sweep.v1"): the canonical spec line + all runs.
void PrintSweepJson(std::ostream& os, const std::string& spec_line,
                    const std::vector<RunReport>& runs);

}  // namespace dcc::scenario
