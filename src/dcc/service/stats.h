// The service's stats surface: the request-latency histogram (the shared
// power-of-two histogram from src/dcc/obs) and the `dcc.service.v1`
// stats section the daemon serves for the `stats` op (and prints on
// clean shutdown). The section layout is pinned byte-for-byte in
// docs/REPORT_SCHEMA.md by tests/report_schema_test.cc — treat field
// changes as schema changes.
#pragma once

#include <cstdint>
#include <iosfwd>

#include "dcc/obs/histogram.h"

namespace dcc::service {

// Request latencies in microseconds. Recording is a relaxed increment,
// so connection threads never contend; quantiles are interpolated inside
// the covering power-of-two bucket — coarse but stable, the right trade
// for a p99 whose job is trend detection.
using LatencyHistogram = obs::Pow2Histogram;

// One snapshot of the service counters ("dcc.service.v1"). Assembled by
// Service::Snapshot(); a plain value so tests can pin the JSON layout
// deterministically.
struct ServiceStats {
  std::int64_t uptime_ms = 0;
  std::int64_t connections_active = 0;
  std::int64_t connections_total = 0;
  std::int64_t requests = 0;  // every frame answered (runs + stats + pings)
  std::int64_t runs = 0;      // run ops that produced a report
  std::int64_t errors = 0;    // requests answered with ok = false
  std::int64_t result_hits = 0;
  std::int64_t result_misses = 0;
  std::int64_t topology_hits = 0;
  std::int64_t topology_misses = 0;
  std::int64_t queue_depth = 0;
  std::int64_t queue_peak = 0;
  std::int64_t queue_capacity = 0;
  double throughput_rps = 0.0;  // requests / uptime
  double latency_ms_p50 = 0.0;
  double latency_ms_p99 = 0.0;
  bool draining = false;

  // {"schema": "dcc.service.v1", ...} — one object, no trailing newline.
  // Hit rates are emitted as derived fields (0 when a cache was never
  // consulted).
  void PrintJson(std::ostream& os) const;
};

}  // namespace dcc::service
