// The SINR round engine: given the set of transmitters in a round, computes
// which listeners successfully receive and from whom (Eq. 1 of the paper).
//
// Because beta > 1, at most one transmitter can satisfy the SINR constraint
// at a given listener, so reception resolves to "the strongest transmitter,
// if its SINR clears beta" — the engine computes exactly that.
//
// Two interference resolution strategies:
//  * kExact — brute force O(|T|) per listener. The semantic reference and
//    test oracle.
//  * kGrid — a uniform spatial index (common/spatial_grid.h) buckets the
//    round's transmitters into tiles. Near-field tiles are scanned exactly;
//    mid- and far-field tiles contribute conservative interference bounds
//    through the propagation model's distance envelope. The bounds prune
//    listeners whose best-case SINR cannot clear beta (the common case in
//    dense rounds); every listener that might receive is resolved exactly
//    by a batched far-field sweep (vectorized where the host supports it),
//    so the reception set matches kExact and reported SINR values agree to
//    >= 9 significant digits (floating-point reassociation only; at extreme
//    SINRs the agreement degrades by an additional eps * |T| * sinr factor
//    from cancellation in the interference subtraction, which affects both
//    modes equally).
// kAuto picks kExact while the network still carries its dense gain matrix
// and kGrid above that size threshold.
//
// --- Parallel sharded rounds (Options::threads) ---
// Either strategy can run one round across K shards on the process-wide
// parallel::WorkerPool. In grid mode a parallel::ShardPlan partitions the
// spatial tiles into K contiguous ranges (balanced by this round's
// listeners-per-tile histogram); each worker resolves the listeners of its
// own tiles against the full, read-only transmitter index — its near-field
// tiles plus the conservative envelope bounds of everything beyond, so the
// "halo" a shard needs from its neighbors is exactly the shared CSR slices
// of their tiles, imported by reference rather than by message. In exact
// mode shards are contiguous listener ranges. Per-listener resolution is a
// pure function of (listener, transmitter index), every worker owns its
// whole scratch, and the merge emits receptions in listener order — so the
// reception set AND every SINR bit are identical to serial execution at
// every thread count. Rounds below min_listeners_per_shard * K listeners
// run serially (the dispatch would cost more than the round). Nested
// engines (inside a sweep job) dispatch too: the work-stealing pool lets
// idle workers steal their shard tickets, so the tail of a sweep donates
// its freed threads to the runs still going.
//
// --- Round pipeline (Options::pipeline) ---
// Everything before the shard fan-out — the transmitter CSR, the shard
// plan, the ordinal buckets — is a pure function of (transmitter set,
// listener set, index state) collected in a RoundPrologue value. When a
// caller can disclose round k+1's sets before round k resolves
// (SetNextRound; schedule-driven protocols like the TDMA family can, via
// the Exec lookahead hook), the engine builds round k+1's prologue on a
// stolen pool worker while round k's shards resolve listeners. The
// speculative prologue carries the input copies plus the Network and
// SpatialGrid generation counters it was built against; at the next
// StepInto it is used only if the disclosed sets match the actual ones
// bit-for-bit AND no mobility/churn/SyncIndex touched the index since —
// otherwise it is discarded and the prologue is rebuilt serially. Either
// way the data entering listener resolution is identical to what the
// serial build would produce, so pipelining never changes a single output
// bit; it only moves the prologue off the critical path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "dcc/common/spatial_grid.h"
#include "dcc/parallel/round_pipeline.h"
#include "dcc/parallel/shard_plan.h"
#include "dcc/sinr/farfield.h"
#include "dcc/sinr/network.h"

namespace dcc::parallel {
class WorkerPool;
}  // namespace dcc::parallel

namespace dcc::sinr {

// Result of one round for one listener.
struct Reception {
  std::size_t listener = 0;
  std::size_t sender = 0;
  double sinr = 0.0;
};

class Engine;

// Hook that can take over whole rounds (Options::delegate). StepInto offers
// every non-empty grid-mode round to the delegate before resolving it
// locally; returning true means `out` holds the round's receptions (in the
// serial emission order — the delegate owns the bit-identity contract),
// false falls through to the engine's own path. The distributed session
// (src/dcc/distrib) is the one implementation: it ships the round to rank
// processes and gathers their replies. Exceptions propagate to the Step
// caller.
class StepDelegate {
 public:
  virtual ~StepDelegate() = default;
  virtual bool StepRound(const Engine& engine,
                         std::span<const std::size_t> transmitters,
                         std::span<const std::size_t> listeners,
                         std::vector<Reception>& out) = 0;
};

class Engine {
 public:
  enum class Mode {
    kAuto,   // kExact up to the dense-gain-matrix limit, kGrid beyond
    kExact,  // brute-force oracle
    kGrid,   // spatial-index pruning + exact fallback
  };

  // How grid mode accumulates each listener tile's far-field bounds.
  // Receptions are bit-identical either way (the pyramid's bounds are
  // conservative relative to the flat walk, so it can only defer more
  // listeners to the exact fallback — see sinr/farfield.h).
  enum class FarField {
    kFlat,     // walk every occupied transmitter tile per listener tile
    kPyramid,  // descend the multi-resolution tile pyramid (O(log #tiles))
  };

  // Default listener grain: below this many listeners per shard a round is
  // not worth dispatching (see Options::min_listeners_per_shard).
  // Re-measured with `bench_parallel_rounds --sweep_grain` (see the
  // ROADMAP's parallel-execution note): per-shard dispatch costs roughly
  // the resolution of a handful of listeners, so grains below ~8 pay pool
  // overhead for rounds too small to amortize it, while larger grains
  // start serializing mid-sized rounds.
  static constexpr std::size_t kMinListenersPerShard = 8;

  struct Options {
    Mode mode = Mode::kAuto;
    // Grid tile side; 0 picks a density-based default (~64 nodes/tile).
    double cell = 0.0;
    // kAuto switches to kGrid for networks larger than this.
    std::size_t grid_threshold = Network::kGainMatrixLimit;
    // Spatial-index coverage area for dynamic networks: positions may move
    // anywhere inside this box without outgrowing the index. Defaults to
    // the bounding box of the construction-time positions (static runs).
    // Not part of the flag grammar — set programmatically (scenario
    // dynamics passes its world box).
    std::optional<Box> coverage;
    // Round-level parallelism: every round is decomposed into this many
    // shards executed on the shared parallel::WorkerPool. 1 = serial
    // (default), 0 = one shard per hardware thread, K > 1 = exactly K
    // shards regardless of the host (receptions are bit-identical to
    // serial at every setting, so K only affects speed).
    int threads = 1;
    // How grid-mode shards cut the tile range (see parallel/shard_plan.h).
    parallel::ShardPolicy shard_policy = parallel::ShardPolicy::kBalanced;
    // Dispatch grain: a round with fewer than min_listeners_per_shard * K
    // listeners runs serially even when threads > 1 (counted in
    // Stats::parallel_small_rounds). Must be >= 1; raising it trades
    // parallel coverage of small rounds for less dispatch overhead —
    // bench_parallel_rounds --sweep_grain measures the trade.
    std::size_t min_listeners_per_shard = kMinListenersPerShard;
    // Overlap the next round's prologue with the current round's shard
    // execution when the caller discloses it via SetNextRound (grid mode,
    // threads > 1 only; bit-identical output either way — see the header
    // comment).
    bool pipeline = false;
    // Far-field accumulation strategy (grid mode). The pyramid is the
    // default: strictly less work per listener tile in sparse-wide rounds,
    // bit-identical receptions (see FarField).
    FarField farfield = FarField::kPyramid;
    // With farfield == kPyramid, descend the pyramid only for rounds whose
    // transmitters occupy at least this many tiles; below it the flat walk
    // is already trivially cheap and the descent's constant factor loses
    // (measured ~+4..9% per round at <100 occupied tiles vs ~5x faster at
    // >1000). Receptions are bit-identical on either path, so the
    // per-round choice is invisible outside timing. Tests pin 0 to force
    // the descent on small fixtures.
    std::size_t pyramid_min_occupied = 512;
    // Transmit-set-memoized prologues: a small LRU of this many full
    // RoundPrologue values keyed on the (transmitter set, listener set)
    // content plus the Network/SpatialGrid generation stamps — the exact
    // validation the pipeline's speculation performs. Schedule-driven
    // protocols (TDMA periodic slots) then skip the serial prologue build
    // entirely on repeated rounds. 0 disables (default). Receptions are
    // bit-identical with the cache on or off: a hit replays a prologue
    // byte-equivalent to what a fresh build would produce.
    std::size_t prologue_cache = 0;
    // Pool to dispatch on (defaults to WorkerPool::Shared()). Must outlive
    // the engine; ignored when the resolved thread count is 1. Not in the
    // flag grammar — tests inject a dedicated pool to pin scheduling
    // behavior without touching the process-wide one.
    parallel::WorkerPool* pool = nullptr;
    // Round takeover hook (grid mode only): offered every non-empty round
    // before local resolution. Must outlive the engine. Not in the flag
    // grammar — the scenario layer wires the distributed session in when
    // --ranks is set.
    StepDelegate* delegate = nullptr;

    // Options overridden from the environment (benches and dcc_run):
    //   DCC_ENGINE_MODE           = exact | grid | auto (default auto)
    //   DCC_ENGINE_CELL           = <tile side>     (default: engine heuristic)
    //   DCC_ENGINE_THREADS        = <shard count, 0=hw> (default: 1, serial)
    //   DCC_ENGINE_MIN_SHARD      = <listener grain> (default: 8)
    //   DCC_ENGINE_FARFIELD       = pyramid | flat  (default pyramid)
    //   DCC_ENGINE_PROLOGUE_CACHE = <entries, 0=off> (default 0)
    // Throws InvalidArgument on any unrecognized or malformed value — a
    // typo must not silently fall back to the default strategy.
    static Options FromEnv();
  };

  explicit Engine(const Network& net) : Engine(net, Options{}) {}
  Engine(const Network& net, Options options);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Computes receptions for one round.
  //  * `transmitters`: indices of nodes transmitting this round.
  //  * `listeners`: indices of nodes listening (a transmitter never listens;
  //    passing it as a listener is an error).
  // Returns one entry per successful reception.
  std::vector<Reception> Step(const std::vector<std::size_t>& transmitters,
                              const std::vector<std::size_t>& listeners) const;

  // Allocation-free variant: clears `out` and appends receptions into it.
  // Reuses internal scratch buffers across rounds — a single Engine must
  // not run concurrent Steps from multiple threads (parallelism inside one
  // Step is the engine's own job, via Options::threads).
  void StepInto(std::span<const std::size_t> transmitters,
                std::span<const std::size_t> listeners,
                std::vector<Reception>& out) const;

  // --- Round pipeline (Options::pipeline). ---

  // Discloses the sets the *next* StepInto will be called with, letting the
  // engine build that round's prologue on an idle pool worker while the
  // current round resolves. One-shot: consumed by the next StepInto, which
  // launches the speculative build before fanning out its shards. Copies
  // the spans (and the transmitters' current positions) immediately, so
  // the caller's buffers may be reused. A prediction that turns out wrong
  // costs the wasted build and nothing else — the engine validates the
  // disclosed sets against the actual ones before use. No-op unless the
  // pipeline is active (grid mode, threads > 1, Options::pipeline).
  void SetNextRound(std::span<const std::size_t> transmitters,
                    std::span<const std::size_t> listeners) const;

  // Drops an un-consumed disclosure (the caller lost the ability to
  // predict the next round).
  void ClearNextRound() const;

  // Launches the disclosed round's speculative build immediately (no-op
  // when nothing was disclosed or a build is already in flight). Steps
  // launch the build themselves — where it overlaps shard resolution — so
  // this exists for callers whose current round never reaches the engine
  // (e.g. a TDMA slot nobody owns): the build then overlaps the caller's
  // inter-round work instead of the disclosure being lost.
  void PumpPrefetch() const;

  // Resolves exactly the listeners named by `ordinals` (ascending indices
  // into `listeners`) against the full transmitter set, appending
  // ordinal-tagged receptions in ordinal order. Grid mode only, always
  // serial. This is the per-rank kernel of the distributed execution mode
  // (src/dcc/distrib): a rank owning a subset of the listeners runs the
  // exact same resolution path a shard worker would, so the gathered
  // merge stays bit-identical to serial. Listener slots outside `ordinals`
  // are never read — a rank may leave them zeroed.
  void StepOrdinalsInto(
      std::span<const std::size_t> transmitters,
      std::span<const std::size_t> listeners,
      std::span<const std::uint32_t> ordinals,
      std::vector<std::pair<std::uint32_t, Reception>>& out) const;

  // SINR of transmitter `v` at listener `u` under transmitter set T.
  double Sinr(std::size_t v, std::size_t u,
              const std::vector<std::size_t>& transmitters) const;

  // Total interference power at `u` from `transmitters` (no noise term).
  double InterferenceAt(std::size_t u,
                        const std::vector<std::size_t>& transmitters) const;

  const Network& net() const { return *net_; }

  // The resolved strategy (never kAuto).
  Mode mode() const { return mode_; }
  const Options& options() const { return options_; }

  // Resolved shard count (>= 1; Options::threads with 0 resolved to the
  // shared pool's parallelism).
  int threads() const { return threads_; }

  // True when SetNextRound disclosures can actually be consumed (pipeline
  // option on, grid mode, pool available). Callers check this to skip the
  // O(n) disclosure assembly when it could never pay off.
  bool pipeline_enabled() const {
    return options_.pipeline && mode_ == Mode::kGrid && pool_ != nullptr;
  }

  // --- Dynamic networks: spatial-index maintenance. ---
  // The grid built at construction tracks the network's positions; after
  // the network mutates (Network::SetPositions / churn), reconcile the
  // index before the next Step. All three are O(changed points) bucket
  // updates — never a rebuild — and no-ops in exact mode. Each first
  // completes any in-flight speculative prologue (whose build reads the
  // index) and bumps the index generation, so the pipeline can never see
  // or use a half-mutated index.

  // Re-tiles every indexed point whose position changed tiles. Call after
  // a bulk Network::SetPositions.
  void SyncIndex();

  // Removes node i from the index (churn leave). Until re-inserted, i must
  // not appear as a transmitter or listener in grid-mode Steps.
  void IndexErase(std::size_t i);

  // Restores node i at its current network position (churn join; pair with
  // Network::SetPosition for the respawn point).
  void IndexInsert(std::size_t i);

  // Live points in the index (== net().size() minus erased nodes); 0 in
  // exact mode, where no index exists.
  std::size_t IndexSize() const { return grid_ ? grid_->point_count() : 0; }

  // The spatial index (grid mode; nullptr in exact mode). Read-only: the
  // distributed session reads tile geometry and occupancy to cut rank
  // ranges and halo sets identical to what the ranks derive themselves.
  const SpatialGrid* grid() const { return grid_ ? &*grid_ : nullptr; }

  // Distance beyond which tiles contribute through shared far-field bounds
  // (grid mode). Part of the halo contract: a rank needs exact CSR slices
  // only for tiles closer than this to its listeners.
  double far_start() const { return far_start_; }

  // Cumulative counters (diagnostics for benches).
  struct Stats {
    std::int64_t rounds = 0;
    std::int64_t transmissions = 0;
    std::int64_t receptions = 0;
    // Grid mode only: listeners rejected by interference bounds alone vs
    // listeners resolved by the exact fallback loop.
    std::int64_t grid_pruned = 0;
    std::int64_t grid_exact_fallbacks = 0;
    // Parallel engines only (threads() > 1): rounds dispatched across
    // shards vs rounds run serially because dispatching could not win
    // (under the listener grain, or a tile plan with < 2 populated
    // shards), and the cumulative listeners resolved by each shard index —
    // the per-shard load profile the dcc.parallel.v1 report section
    // exposes.
    std::int64_t parallel_rounds = 0;
    std::int64_t parallel_small_rounds = 0;
    std::vector<std::int64_t> shard_listeners;
    // Pipeline: rounds whose prologue came from a validated SetNextRound
    // speculation (deterministic), and the wall time of the speculative
    // builds that genuinely ran on another thread before they were needed
    // (timing-dependent — an honest overlap gauge, not a logical count).
    std::int64_t rounds_pipelined = 0;
    std::int64_t prologue_overlap_ns = 0;
    // Work stealing: pool threads that joined this engine's shard fan-outs
    // by stealing a ticket from another worker's deque. Always 0 for a
    // top-level engine (its tickets go through the injection queue);
    // nonzero when a nested engine's shards were picked up by idle sweep
    // workers.
    std::int64_t steal_count = 0;
    // Hoisted per-listener-tile far-field state: tiles whose bounds/close
    // lists were computed by a prologue build vs served again from a
    // memoized prologue (cache hit) without recomputation. Before the
    // hoist, boundary tiles shared by adjacent shards were recomputed per
    // shard; now every distinct listener tile is computed at most once per
    // distinct round content.
    std::int64_t tile_states_computed = 0;
    std::int64_t tile_states_reused = 0;
    // Transmit-set-memoized prologue cache (Options::prologue_cache):
    // rounds whose full prologue was replayed from the LRU vs rounds that
    // had to build one (misses stay 0 while the cache is disabled).
    std::int64_t prologue_cache_hits = 0;
    std::int64_t prologue_cache_misses = 0;
  };
  const Stats& stats() const { return stats_; }
  // Counters accumulate through const Steps (they are diagnostics, not
  // logical state), so resetting them is const as well.
  void ResetStats() const { stats_ = {}; }

 private:
  // Listeners deferred to the exact fallback, with their phase-A partials.
  struct GridFallback {
    std::uint32_t tile = 0;     // listener tile (phase-B grouping key)
    std::uint32_t ordinal = 0;  // position in the listeners span
    std::size_t u = 0;
    double close_sum = 0.0;   // exact near+mid interference
    double close_best = -1.0; // strongest near/mid gain...
    std::size_t close_best_v = 0;  // ...and its transmitter
  };

  // Everything a grid round computes before listener resolution, as one
  // reusable value: the per-round transmitter index (CSR by tile), the
  // shard plan and ordinal buckets, and the dispatch decision. A pure
  // function of (transmitters, listeners, index state), built either
  // serially at the top of StepGrid or speculatively on a pool worker
  // (Options::pipeline). Two slots double-buffer: the live round reads one
  // while the speculative build writes the other.
  struct RoundPrologue {
    // Speculative builds only: copies of the disclosed inputs (validated
    // against the actual ones at use) and the transmitters' positions at
    // disclosure time (the build and the far-sweep kernels read these
    // instead of the live network, so concurrent epoch-boundary motion
    // can't tear them). Empty for synchronous builds, which read the
    // caller's spans directly.
    std::vector<std::size_t> tx;
    std::vector<std::size_t> listeners;
    std::vector<Vec2> tx_pos;
    std::uint64_t index_gen = 0;  // SpatialGrid::generation() at disclosure
    std::uint64_t pos_gen = 0;    // Network::generation() at disclosure

    // Transmitter index: CSR over tiles, positions in CSR order.
    std::vector<char> is_tx;  // per-node transmitter marks (cleared per round)
    std::vector<std::size_t> tx_start;    // CSR offsets per tile
    std::vector<std::size_t> tx_fill;     // scatter cursors
    std::vector<std::size_t> tx_members;  // transmitters by tile
    std::vector<double> tx_sx;
    std::vector<double> tx_sy;
    std::vector<int> occupied_tx;  // tiles with >= 1 transmitter

    // Hoisted per-listener-tile far-field state: shared far-field bounds
    // plus each tile's close (near/mid) transmitter-tile list, computed
    // once per build for every distinct listener tile (ascending) and read
    // by every shard — boundary tiles shared by adjacent shards are not
    // recomputed per shard, and a memoized prologue replays this state
    // for free. Only the entries named by lt_tiles are valid.
    std::vector<int> lt_tiles;  // distinct listener tiles, ascending
    std::vector<char> lt_mark;  // collection scratch (all-zero between builds)
    std::vector<double> tile_far_lo;
    std::vector<double> tile_far_ub;
    std::vector<std::uint32_t> tile_close_begin;
    std::vector<std::uint32_t> tile_close_end;
    std::vector<int> close_pool;

    // Shard decomposition (only filled when shards > 1).
    int shards = 1;
    bool small_round = false;  // threads > 1 but dispatch cannot win
    parallel::ShardPlan plan;
    std::vector<std::uint32_t> shard_weights;    // listeners per tile
    std::vector<std::uint32_t> listener_shard;   // shard per listener
    std::vector<std::uint32_t> shard_ord_start;  // CSR offsets
    std::vector<std::uint32_t> shard_ord_fill;
    std::vector<std::uint32_t> shard_ordinals;   // ordinals by shard
  };

  // One worker's whole mutable state for one round: the deferred-fallback
  // queue and the (ordinal, Reception) pairs it produced (the
  // per-listener-tile bound cache lives in the RoundPrologue now — shards
  // read it, they never build it). Serial rounds use scratch_[0]; a
  // K-shard round uses scratch_[0..K) with no sharing, which is what makes
  // the fan-out race-free by construction.
  struct RoundScratch {
    std::vector<GridFallback> fallback;
    // Receptions tagged with their listener ordinal; sorted by ordinal at
    // the end of a range so the merge is a deterministic concatenation.
    std::vector<std::pair<std::uint32_t, Reception>> pending;
    std::vector<std::pair<std::size_t, std::size_t>> far_ranges;
    // Round-local counter deltas, folded into stats_ after the join.
    std::int64_t pruned = 0;
    std::int64_t exact_fallbacks = 0;
  };

  void StepExact(std::span<const std::size_t> transmitters,
                 std::span<const std::size_t> listeners,
                 std::vector<Reception>& out) const;
  void StepGrid(std::span<const std::size_t> transmitters,
                std::span<const std::size_t> listeners,
                std::vector<Reception>& out) const;
  // The exact per-listener inner loop, shared by kExact mode, kGrid's
  // fallback for models without a devirtualized kernel, and the
  // near-threshold recheck; returns the reception if SINR clears beta.
  std::optional<Reception> ResolveExact(
      std::size_t u, std::span<const std::size_t> transmitters) const;
  // Builds P from (tx, listeners): buckets the transmitters into tiles
  // (CSR, occupied tiles ascending), decides the dispatch, and — when
  // dispatching — plans contiguous tile shards balanced by this round's
  // listener histogram and buckets listener ordinals by shard (stable, so
  // each shard sees ascending ordinals — the serial processing order).
  // `tx_pos` supplies transmitter positions (speculative builds pass their
  // snapshot; nullptr reads the live network). `ordinals` scopes the
  // hoisted tile state: empty builds it for every listener's tile (a whole
  // round); a rank passes its owned ordinals so it never pays for tiles it
  // does not resolve. Read-only for the rest of the round, which is what
  // lets shard workers share it.
  void BuildPrologue(RoundPrologue& P, std::span<const std::size_t> tx,
                     std::span<const std::size_t> listeners,
                     const Vec2* tx_pos,
                     std::span<const std::uint32_t> ordinals) const;
  // The hoisted far-field stage of BuildPrologue: collects the distinct
  // listener tiles and computes each one's far-field bounds + close list,
  // via the pyramid (Options::farfield) or the flat occupied-tile walk.
  void BuildTileState(RoundPrologue& P, std::span<const std::size_t> listeners,
                      std::span<const std::uint32_t> ordinals) const;
  // Returns this round's ready prologue: a validated speculative one
  // (flipping the live slot), a memoized one from the prologue cache, or a
  // fresh serial build. Updates the pipeline/dispatch/cache stats and
  // live_from_cache_ (cache-resident prologues keep their is_tx marks
  // across rounds; the others are cleared at round end as before).
  RoundPrologue& AcquirePrologue(std::span<const std::size_t> tx,
                                 std::span<const std::size_t> listeners) const;
  // The prologue-cache half of AcquirePrologue, shared with the rank path:
  // returns a hit's prologue or builds into the evicted LRU slot. Only
  // called when options_.prologue_cache > 0.
  RoundPrologue& CacheAcquire(std::span<const std::size_t> tx,
                              std::span<const std::size_t> listeners,
                              std::span<const std::uint32_t> ordinals) const;
  // Launches the speculative build of the disclosed next round into the
  // spare slot, if there is a disclosure and the pipeline is active.
  void MaybePrefetchNext() const;
  // Completes and discards any in-flight speculative build. Must run
  // before anything the build reads (grid buckets, tile map) mutates.
  void AbandonPrefetch() const;
  // Clears P's is_tx marks for the given transmitter set.
  static void ClearTxMarks(RoundPrologue& P,
                           std::span<const std::size_t> tx);
  // Resolves listeners into s.pending, tagged with their ordinal and
  // ordinal-sorted: all of them when `all_listeners` is set (a whole
  // serial grid round), else exactly the ones named by `ordinals`
  // (ascending indices into `listeners`, possibly empty — an empty shard
  // is a no-op). The body of one shard worker.
  void StepGridRange(const RoundPrologue& P,
                     std::span<const std::size_t> transmitters,
                     std::span<const std::size_t> listeners,
                     bool all_listeners,
                     std::span<const std::uint32_t> ordinals,
                     RoundScratch& s) const;
  // kGrid's batched exact fallback for the pure path-loss model: resolves
  // s.fallback tile by tile, sweeping each tile group's far-field
  // transmitter ranges once per kChunk-listener chunk (kChunk is defined in
  // engine.cc; one AVX-512 register of lanes). Near-threshold SINRs are
  // re-resolved over `transmitters` with the scalar kernel so the
  // reception set is host-invariant.
  void ResolveFallbacksBlocked(const RoundPrologue& P,
                               std::span<const std::size_t> transmitters,
                               RoundScratch& s) const;
  // Grows scratch_ to `shards` entries.
  void EnsureScratch(int shards) const;
  // Concatenates every shard's pending receptions, restores global
  // listener order, and appends to `out` (allocation-free at steady
  // state). Folds the shards' counter deltas into stats_.
  void MergeShards(int shards, std::vector<Reception>& out) const;

  const Network* net_;
  Options options_;
  Mode mode_ = Mode::kExact;
  int threads_ = 1;                       // resolved, >= 1
  parallel::WorkerPool* pool_ = nullptr;  // set iff threads_ > 1
  mutable Stats stats_;

  // --- Grid-mode state (unused in kExact). ---
  std::optional<SpatialGrid> grid_;
  double near_radius_ = 0.0;  // exact-scan distance
  double far_start_ = 0.0;    // beyond this, tiles share per-listener-tile bounds
  // Set iff the network's model is exactly PathLossModel: the grid hot
  // loops then inline PathLossModel::GainD2 instead of dispatching through
  // the virtual GainFromDistanceSq per link.
  const PathLossModel* pure_path_loss_ = nullptr;

  // Double-buffered round prologues: prologue_[live_slot_] backs the
  // current round; the other slot is the speculative build target.
  mutable RoundPrologue prologue_[2];
  mutable int live_slot_ = 0;

  // Far-field tile pyramid (Options::farfield == kPyramid), rebuilt by each
  // prologue build from that round's tx CSR. One instance is enough: builds
  // are serialized (AbandonPrefetch/Collect precede every fresh build) and
  // shards never touch it — they read the hoisted tile state instead.
  mutable FarFieldPyramid pyramid_;

  // Transmit-set-memoized prologues (Options::prologue_cache): a small LRU
  // of fully built RoundPrologue values. Entries keep their is_tx marks
  // while resident (valid for their own tx set; every prologue carries its
  // own mark array) and are cleared only on eviction.
  struct CacheEntry {
    bool used = false;
    std::uint64_t key = 0;        // content hash (validation re-compares)
    std::uint64_t last_used = 0;  // LRU clock
    std::vector<std::uint32_t> ordinals;  // rank-path key (empty = whole round)
    RoundPrologue P;
  };
  mutable std::vector<CacheEntry> cache_;
  mutable std::uint64_t cache_tick_ = 0;
  mutable bool live_from_cache_ = false;

  // --- Pipeline state (Options::pipeline). ---
  mutable parallel::RoundPlanner planner_;
  mutable bool prefetch_pending_ = false;
  // The un-consumed SetNextRound disclosure (swapped into the spare slot
  // when the speculative build launches).
  mutable bool next_valid_ = false;
  mutable std::vector<std::size_t> next_tx_;
  mutable std::vector<std::size_t> next_listeners_;
  mutable std::vector<Vec2> next_tx_pos_;
  mutable std::uint64_t next_index_gen_ = 0;
  mutable std::uint64_t next_pos_gen_ = 0;

  // Per-worker round state; [0] doubles as the serial scratch.
  mutable std::vector<RoundScratch> scratch_;
  mutable std::vector<std::pair<std::uint32_t, Reception>> merge_;
};

}  // namespace dcc::sinr
