// The wake-up problem (Theorem 4): nodes become active spontaneously at
// adversary-chosen rounds (global clock available); activated nodes must
// activate the whole network. Scheme: at every epoch boundary, the nodes
// already awake run Clustering; the resulting cluster centers (pairwise
// > 1-eps apart — a valid SMSB source set) run SMSBroadcast.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "dcc/cluster/profile.h"
#include "dcc/sim/runner.h"

namespace dcc::bcast {

struct WakeupResult {
  Round rounds = 0;       // from first spontaneous wake-up to all awake
  int epochs = 0;
  bool all_awake = false;
  std::vector<Round> awake_at;  // by node index; -1 = never
};

// `spontaneous` lists (node index, round) spontaneous activations; at least
// one required. `gamma` and `max_phases` are the public Delta and D bounds.
WakeupResult RunWakeup(sim::Exec& ex, const cluster::Profile& prof,
                       const std::vector<std::pair<std::size_t, Round>>&
                           spontaneous,
                       int gamma, int max_phases, std::uint64_t nonce);

}  // namespace dcc::bcast
