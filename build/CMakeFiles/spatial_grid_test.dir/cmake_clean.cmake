file(REMOVE_RECURSE
  "CMakeFiles/spatial_grid_test.dir/tests/spatial_grid_test.cc.o"
  "CMakeFiles/spatial_grid_test.dir/tests/spatial_grid_test.cc.o.d"
  "spatial_grid_test"
  "spatial_grid_test.pdb"
  "spatial_grid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spatial_grid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
