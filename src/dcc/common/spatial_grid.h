// Uniform spatial grid over a fixed point set, with dense tile storage.
//
// Unlike PointGrid (geometry.h), which hashes sparse cells for one-off
// radius queries, SpatialGrid is built once over the simulator's node
// positions and optimized for the SINR engine's per-round tile sweeps:
//  * CSR layout — members of a tile are a contiguous span;
//  * O(1) point -> tile lookup (precomputed per point);
//  * conservative distance bounds between a point (or tile) and a tile's
//    bounding box, used to bound per-tile interference contributions.
//
// Tiles are indexed row-major in [0, tile_count()). The grid covers the
// bounding box of the points; every point maps to exactly one tile.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "dcc/common/geometry.h"

namespace dcc {

class SpatialGrid {
 public:
  // `cell` > 0 is the tile side length.
  SpatialGrid(std::span<const Vec2> pts, double cell);

  double cell() const { return cell_; }
  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int tile_count() const { return nx_ * ny_; }
  std::size_t point_count() const { return tile_of_point_.size(); }

  // Tile of point i (as passed at construction).
  int TileOfPoint(std::size_t i) const { return tile_of_point_[i]; }

  // Tile containing an arbitrary position (clamped into the grid).
  int TileAt(Vec2 p) const;

  // Point indices inside a tile (contiguous, ascending).
  std::span<const std::size_t> Members(int tile) const {
    return {points_.data() + start_[static_cast<std::size_t>(tile)],
            points_.data() + start_[static_cast<std::size_t>(tile) + 1]};
  }

  // Tiles holding at least one point, ascending.
  const std::vector<int>& occupied() const { return occupied_; }

  // Distance bounds from a position to a tile's closed bounding box:
  // DistLo <= |p - q| <= DistHi for every q in the tile box (and hence for
  // every member point). The squared variants skip the sqrt for hot loops.
  double DistLoSq(Vec2 p, int tile) const;
  double DistHiSq(Vec2 p, int tile) const;
  double DistLo(Vec2 p, int tile) const { return std::sqrt(DistLoSq(p, tile)); }
  double DistHi(Vec2 p, int tile) const { return std::sqrt(DistHiSq(p, tile)); }

  // Distance bounds between two tiles' bounding boxes: for every p in tile
  // a's box and q in tile b's box, TileDistLo <= |p - q| <= TileDistHi.
  double TileDistLoSq(int a, int b) const;
  double TileDistHiSq(int a, int b) const;
  double TileDistLo(int a, int b) const { return std::sqrt(TileDistLoSq(a, b)); }
  double TileDistHi(int a, int b) const { return std::sqrt(TileDistHiSq(a, b)); }

 private:
  double lo_x_ = 0.0, lo_y_ = 0.0;  // grid origin (bounding-box corner)
  double cell_ = 1.0;
  int nx_ = 1, ny_ = 1;
  std::vector<int> tile_of_point_;
  std::vector<std::size_t> start_;   // CSR offsets, size tile_count()+1
  std::vector<std::size_t> points_;  // point ids grouped by tile
  std::vector<int> occupied_;
};

}  // namespace dcc
