// A persistent worker pool for data-parallel fan-out: Run(n, fn) executes
// fn(0..n-1) across the pool's threads plus the calling thread, blocking
// until every job finished. One process-wide pool (`WorkerPool::Shared()`,
// sized once to the hardware concurrency) backs both the scenario sweep
// loop and the engine's sharded rounds, so neither pays thread creation or
// teardown per call — the cost that made the old per-sweep pool a wash for
// short sweeps and ruled out per-round parallelism entirely.
//
// Semantics:
//  * Jobs are independent; the pool guarantees nothing about which thread
//    runs which job, so callers needing determinism must make each job a
//    pure function of its index (the engine's shard workers are).
//  * Run is serialized: concurrent top-level Run calls queue on an internal
//    mutex and execute one fan-out at a time.
//  * Re-entrant Run — a job calling Run on the same pool — degrades to an
//    inline serial loop instead of deadlocking. Nested parallelism (a
//    parallel engine inside a parallel sweep) therefore parallelizes at
//    the outermost level only, by design.
//  * The first exception thrown by a job is captured and rethrown from Run
//    after all jobs drain; later exceptions are dropped.
//  * Run establishes a full happens-before edge: everything jobs wrote is
//    visible to the caller when Run returns.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dcc::parallel {

class WorkerPool {
 public:
  // Spawns `workers` threads. The calling thread of Run also executes jobs,
  // so parallelism() == workers + 1; workers == 0 is a valid (serial) pool.
  explicit WorkerPool(int workers);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  // The process-wide pool, sized once on first use to
  // hardware_concurrency() - 1 workers (never negative). Lives for the
  // process; intentionally leaked so late static destructors can still
  // call into it.
  static WorkerPool& Shared();

  // Max threads a Run can occupy (pool workers + the caller).
  int parallelism() const { return static_cast<int>(threads_.size()) + 1; }

  // Runs fn(i) for i in [0, n_jobs), returning when all completed. At most
  // max_workers threads participate (0 = no cap beyond parallelism());
  // max_workers == 1, a 0-worker pool, n_jobs <= 1, and re-entrant calls
  // all run the loop inline on the caller.
  void Run(std::size_t n_jobs, const std::function<void(std::size_t)>& fn,
           int max_workers = 0);

  // True while the calling thread is executing a job of this pool (the
  // re-entrancy test Run uses).
  bool OnWorkerThread() const;

 private:
  struct Task;

  void WorkerLoop();
  // Pulls job indices from the task until exhausted; records the first
  // exception. Returns after contributing to `completed`.
  static void DrainJobs(Task& task);

  std::vector<std::thread> threads_;
  std::mutex run_mu_;  // serializes top-level Run calls

  std::mutex mu_;  // guards task_, generation_, stop_, Task bookkeeping
  std::condition_variable work_cv_;  // workers: new task or shutdown
  std::condition_variable done_cv_;  // caller: task fully drained
  Task* task_ = nullptr;
  std::uint64_t generation_ = 0;  // bumped per task so workers join each once
  bool stop_ = false;
};

}  // namespace dcc::parallel
