#include "dcc/cluster/radius_reduction.h"

#include <algorithm>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "dcc/cluster/full_sparsify.h"
#include "dcc/mis/local_mis.h"
#include "dcc/obs/trace.h"

namespace dcc::cluster {

namespace {

constexpr std::int32_t kHelloMsg = 131;
constexpr std::int32_t kMisStateMsg = 132;
constexpr std::int32_t kNewClusterMsg = 133;

}  // namespace

RadiusReductionStats RadiusReduction(sim::Exec& ex, const Profile& prof,
                                     const std::vector<std::size_t>& members,
                                     std::vector<ClusterId>& cluster_of,
                                     int gamma, std::uint64_t nonce) {
  DCC_TRACE_SPAN("cluster.radius_reduction");
  const sinr::Network& net = ex.net();
  const std::int64_t N = net.params().id_space;
  const Round start = ex.rounds();
  RadiusReductionStats stats;

  std::vector<std::size_t> X = members;  // still-unassigned nodes
  std::unordered_map<std::size_t, ClusterId> newcluster;
  std::unordered_set<std::size_t> member_set(members.begin(), members.end());

  const int hard_cap = prof.early_stop ? 4 * prof.rr_iters : prof.rr_iters;
  for (int it = 0; it < hard_cap && !X.empty(); ++it) {
    if (!prof.early_stop && it >= prof.rr_iters) break;
    const std::uint64_t it_nonce = HashCombine(nonce, 0x3000u + it);

    // 1) Thin X to a constant-density core (keeps >= 1 node per cluster).
    FullSparsifyResult full = FullSparsify(ex, prof, X, cluster_of,
                                           std::max(gamma, 2), it_nonce);
    const std::vector<std::size_t>& core = full.final_set();
    if (core.empty()) break;

    std::vector<sim::Participant> core_parts;
    core_parts.reserve(core.size());
    std::unordered_map<std::size_t, std::size_t> core_pos;
    for (const std::size_t idx : core) {
      core_pos.emplace(idx, core_parts.size());
      core_parts.push_back(sim::Participant{idx, net.id(idx), kNoCluster});
    }

    const auto sns = prof.MakeSns(N, it_nonce);

    // 2) Hello exchange over SNS: core nodes learn the core nodes they can
    //    hear — the graph G of Alg. 5 line 5.
    std::vector<std::vector<std::size_t>> g_adj(core_parts.size());
    sim::ExecuteSchedule(
        ex, *sns, core_parts,
        [&](std::size_t idx, std::int64_t) -> std::optional<sim::Message> {
          sim::Message m;
          m.src = net.id(idx);
          m.kind = kHelloMsg;
          return m;
        },
        [&](std::size_t listener, const sim::Message& m, std::int64_t) {
          if (m.kind != kHelloMsg) return;
          const auto it2 = core_pos.find(listener);
          if (it2 == core_pos.end()) return;
          g_adj[it2->second].push_back(
              core_pos.at(net.IndexOf(m.src)));
        });
    for (auto& a : g_adj) {
      std::sort(a.begin(), a.end());
      a.erase(std::unique(a.begin(), a.end()), a.end());
    }

    // 3) MIS of G via local-minima rounds; one SNS replay per LOCAL round.
    std::vector<mis::MisState> state(core_parts.size(),
                                     mis::MisState::kUndecided);
    const int mis_cap = std::max(prof.mis_rounds, 1);
    for (int r = 0; r < mis_cap; ++r) {
      std::vector<std::vector<std::pair<NodeId, mis::MisState>>> inbox(
          core_parts.size());
      sim::ExecuteSchedule(
          ex, *sns, core_parts,
          [&](std::size_t idx, std::int64_t) -> std::optional<sim::Message> {
            const std::size_t p = core_pos.at(idx);
            sim::Message m;
            m.src = net.id(idx);
            m.kind = kMisStateMsg;
            m.a = static_cast<std::int64_t>(state[p]);
            return m;
          },
          [&](std::size_t listener, const sim::Message& m, std::int64_t) {
            if (m.kind != kMisStateMsg) return;
            const auto it2 = core_pos.find(listener);
            if (it2 == core_pos.end()) return;
            inbox[it2->second].emplace_back(m.src,
                                            static_cast<mis::MisState>(m.a));
          });
      bool changed = false;
      std::vector<mis::MisState> next(state);
      for (std::size_t p = 0; p < core_parts.size(); ++p) {
        next[p] = mis::LocalMinimaStep(core_parts[p].id, state[p], inbox[p]);
        changed = changed || next[p] != state[p];
      }
      state = std::move(next);
      if (prof.early_stop && !changed) break;
    }

    // 4) Centers broadcast over SNS; unassigned members adopt the first
    //    center they hear (Alg. 5 lines 7-10).
    std::vector<sim::Participant> centers;
    for (std::size_t p = 0; p < core_parts.size(); ++p) {
      if (state[p] == mis::MisState::kInMis) centers.push_back(core_parts[p]);
    }
    if (centers.empty()) continue;  // nothing decided; try next iteration
    std::unordered_set<std::size_t> x_set(X.begin(), X.end());
    sim::ExecuteSchedule(
        ex, *sns, centers,
        [&](std::size_t idx, std::int64_t) -> std::optional<sim::Message> {
          sim::Message m;
          m.src = net.id(idx);
          m.kind = kNewClusterMsg;
          return m;
        },
        [&](std::size_t listener, const sim::Message& m, std::int64_t) {
          if (m.kind != kNewClusterMsg) return;
          if (!x_set.count(listener)) return;
          if (newcluster.count(listener)) return;  // first reception wins
          newcluster.emplace(listener, m.src);
        });
    for (const auto& c : centers) {
      newcluster[c.index] = c.id;  // centers name their own cluster
    }

    // 5) Retire assigned nodes.
    std::vector<std::size_t> next_x;
    for (const std::size_t idx : X) {
      if (!newcluster.count(idx)) next_x.push_back(idx);
    }
    X = std::move(next_x);
    stats.iterations = it + 1;
  }

  for (const auto& [idx, phi] : newcluster) cluster_of[idx] = phi;
  stats.unassigned = X.size();
  stats.rounds = ex.rounds() - start;
  return stats;
}

}  // namespace dcc::cluster
