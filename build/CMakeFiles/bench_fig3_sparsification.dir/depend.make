# Empty dependencies file for bench_fig3_sparsification.
# This may be replaced when dependencies are built.
