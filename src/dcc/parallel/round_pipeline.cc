#include "dcc/parallel/round_pipeline.h"

#include <chrono>
#include <utility>

#include "dcc/common/types.h"
#include "dcc/obs/trace.h"

namespace dcc::parallel {

void RoundPlanner::Launch(std::function<void()> build) {
  DCC_CHECK(pool_ != nullptr);
  DCC_CHECK(!handle_.valid());
  DCC_TRACE_INSTANT("pipeline.launch");
  handle_ = pool_->Submit([this, b = std::move(build)] {
    DCC_TRACE_SPAN("pipeline.speculate");
    const auto t0 = std::chrono::steady_clock::now();
    b();
    build_ns_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  });
}

RoundPlanner::Outcome RoundPlanner::Collect() {
  DCC_CHECK(handle_.valid());
  DCC_TRACE_SPAN("pipeline.collect");
  Outcome out;
  out.overlapped = handle_.Wait();
  out.build_ns = build_ns_;
  return out;
}

void RoundPlanner::Abandon() {
  if (handle_.valid()) handle_.Wait();
}

}  // namespace dcc::parallel
