#include "dcc/common/spatial_grid.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "dcc/common/rng.h"

namespace dcc {
namespace {

std::vector<Vec2> RandomPoints(int n, double side, std::uint64_t seed) {
  Xoshiro256ss rng(seed);
  std::vector<Vec2> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    pts.push_back({side * rng.NextDouble(), side * rng.NextDouble()});
  }
  return pts;
}

TEST(SpatialGridTest, MembersPartitionThePointSet) {
  const auto pts = RandomPoints(200, 10.0, 1);
  const SpatialGrid grid(pts, 1.5);
  std::vector<char> seen(pts.size(), 0);
  std::size_t total = 0;
  for (int t = 0; t < grid.tile_count(); ++t) {
    for (const std::size_t i : grid.Members(t)) {
      EXPECT_EQ(grid.TileOfPoint(i), t);
      EXPECT_FALSE(seen[i]);
      seen[i] = 1;
      ++total;
    }
  }
  EXPECT_EQ(total, pts.size());
}

TEST(SpatialGridTest, OccupiedListsExactlyNonEmptyTiles) {
  const auto pts = RandomPoints(64, 8.0, 2);
  const SpatialGrid grid(pts, 2.0);
  std::vector<int> expect;
  for (int t = 0; t < grid.tile_count(); ++t) {
    if (!grid.Members(t).empty()) expect.push_back(t);
  }
  EXPECT_EQ(grid.occupied(), expect);
}

TEST(SpatialGridTest, PointToTileBoundsAreSound) {
  const auto pts = RandomPoints(300, 12.0, 3);
  const SpatialGrid grid(pts, 1.0);
  const auto probes = RandomPoints(20, 14.0, 4);
  for (const Vec2 p : probes) {
    for (const int t : grid.occupied()) {
      const double lo = grid.DistLo(p, t);
      const double hi = grid.DistHi(p, t);
      for (const std::size_t i : grid.Members(t)) {
        const double d = Dist(p, pts[i]);
        EXPECT_LE(lo, d + 1e-12);
        EXPECT_GE(hi, d - 1e-12);
      }
    }
  }
}

TEST(SpatialGridTest, TileToTileBoundsAreSound) {
  const auto pts = RandomPoints(300, 12.0, 5);
  const SpatialGrid grid(pts, 1.3);
  for (const int a : grid.occupied()) {
    for (const int b : grid.occupied()) {
      const double lo = grid.TileDistLo(a, b);
      const double hi = grid.TileDistHi(a, b);
      for (const std::size_t i : grid.Members(a)) {
        for (const std::size_t j : grid.Members(b)) {
          const double d = Dist(pts[i], pts[j]);
          EXPECT_LE(lo, d + 1e-12);
          EXPECT_GE(hi, d - 1e-12);
        }
      }
    }
  }
}

TEST(SpatialGridTest, DegenerateSets) {
  // Empty set: one tile, no members.
  const SpatialGrid empty(std::span<const Vec2>{}, 1.0);
  EXPECT_EQ(empty.tile_count(), 1);
  EXPECT_TRUE(empty.occupied().empty());

  // Co-located points land in the same tile.
  std::vector<Vec2> same(5, Vec2{3.0, -2.0});
  const SpatialGrid grid(same, 0.7);
  EXPECT_EQ(grid.tile_count(), 1);
  EXPECT_EQ(grid.Members(0).size(), 5u);

  // Collinear points: a 1-row grid.
  std::vector<Vec2> line;
  for (int i = 0; i < 10; ++i) line.push_back({static_cast<double>(i), 0.0});
  const SpatialGrid lg(line, 1.0);
  EXPECT_EQ(lg.ny(), 1);
  EXPECT_GE(lg.nx(), 10);
}

TEST(SpatialGridTest, RejectsNonPositiveCell) {
  const auto pts = RandomPoints(4, 1.0, 6);
  EXPECT_THROW(SpatialGrid(pts, 0.0), InvalidArgument);
}

// --- Incremental maintenance (dynamic networks). ---

// Structural equivalence of two grids over the same index space: same live
// set, same tile per live point, identical member sets per tile and
// identical occupied lists.
void ExpectEquivalent(const SpatialGrid& a, const SpatialGrid& b) {
  ASSERT_EQ(a.tile_count(), b.tile_count());
  ASSERT_EQ(a.point_count(), b.point_count());
  const std::size_t bound = std::max(a.index_bound(), b.index_bound());
  for (std::size_t i = 0; i < bound; ++i) {
    ASSERT_EQ(a.Contains(i), b.Contains(i)) << "slot " << i;
    if (a.Contains(i)) {
      EXPECT_EQ(a.TileOfPoint(i), b.TileOfPoint(i)) << "slot " << i;
    }
  }
  for (int t = 0; t < a.tile_count(); ++t) {
    std::vector<std::size_t> ma(a.Members(t).begin(), a.Members(t).end());
    std::vector<std::size_t> mb(b.Members(t).begin(), b.Members(t).end());
    std::sort(ma.begin(), ma.end());
    std::sort(mb.begin(), mb.end());
    EXPECT_EQ(ma, mb) << "tile " << t;
  }
  EXPECT_EQ(a.occupied(), b.occupied());
}

TEST(SpatialGridIncrementalTest, RandomizedOpsMatchFreshBuild) {
  const double side = 9.0;
  const Box world{{0.0, 0.0}, {side, side}};
  auto pts = RandomPoints(160, side, 10);
  SpatialGrid grid(pts, 1.7, world);

  Xoshiro256ss rng(11);
  std::vector<char> live(pts.size(), 1);
  for (int op = 0; op < 4000; ++op) {
    const auto i = static_cast<std::size_t>(rng.NextBelow(pts.size()));
    const int kind = static_cast<int>(rng.NextBelow(4));
    if (kind == 3 && live[i]) {
      grid.Erase(i);
      live[i] = 0;
    } else {
      const Vec2 p{side * rng.NextDouble(), side * rng.NextDouble()};
      pts[i] = p;
      if (live[i]) {
        grid.Move(i, p);
      } else {
        grid.Insert(i, p);
        live[i] = 1;
      }
    }
    if (op % 500 != 499) continue;
    // A fresh build over the same positions with the same slots erased must
    // be indistinguishable from the incrementally maintained grid.
    SpatialGrid fresh(pts, 1.7, world);
    for (std::size_t j = 0; j < live.size(); ++j) {
      if (!live[j]) fresh.Erase(j);
    }
    ExpectEquivalent(grid, fresh);
  }
}

TEST(SpatialGridIncrementalTest, InsertExtendsTheIndexSpace) {
  const Box world{{0.0, 0.0}, {4.0, 4.0}};
  const auto pts = RandomPoints(5, 4.0, 12);
  SpatialGrid grid(pts, 1.0, world);
  EXPECT_FALSE(grid.Contains(9));
  grid.Insert(9, {3.5, 3.5});  // slots 5..8 stay erased
  EXPECT_TRUE(grid.Contains(9));
  EXPECT_FALSE(grid.Contains(7));
  EXPECT_EQ(grid.point_count(), 6u);
  EXPECT_EQ(grid.TileOfPoint(9), grid.TileAt({3.5, 3.5}));
}

TEST(SpatialGridIncrementalTest, RejectsInvalidOps) {
  const Box world{{0.0, 0.0}, {4.0, 4.0}};
  const auto pts = RandomPoints(6, 4.0, 13);
  SpatialGrid grid(pts, 1.0, world);
  EXPECT_THROW(grid.Move(0, {17.0, 1.0}), InvalidArgument);  // outside coverage
  EXPECT_THROW(grid.Insert(0, {1.0, 1.0}), InvalidArgument);  // already live
  grid.Erase(0);
  EXPECT_THROW(grid.Erase(0), InvalidArgument);         // already erased
  EXPECT_THROW(grid.Move(0, {1.0, 1.0}), InvalidArgument);  // erased slot
  // Coverage-box constructor rejects points outside the box.
  EXPECT_THROW(SpatialGrid(pts, 1.0, Box{{0.0, 0.0}, {0.5, 0.5}}),
               InvalidArgument);
}

TEST(SpatialGridIncrementalTest, OccupiedStaysExactUnderMutation) {
  const Box world{{0.0, 0.0}, {6.0, 6.0}};
  auto pts = RandomPoints(12, 6.0, 14);
  SpatialGrid grid(pts, 2.0, world);
  // Collapse everything into one corner tile, then fan back out.
  for (std::size_t i = 0; i < pts.size(); ++i) grid.Move(i, {0.1, 0.1});
  EXPECT_EQ(grid.occupied(), std::vector<int>{0});
  Xoshiro256ss rng(15);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    grid.Move(i, {6.0 * rng.NextDouble(), 6.0 * rng.NextDouble()});
  }
  std::vector<int> expect;
  for (int t = 0; t < grid.tile_count(); ++t) {
    if (!grid.Members(t).empty()) expect.push_back(t);
  }
  EXPECT_EQ(grid.occupied(), expect);
}

}  // namespace
}  // namespace dcc
