// The observability layer in isolation: the power-of-two histogram's
// interpolated quantiles (including the single-bucket edge case the old
// service LatencyHistogram got wrong — p50 == p99 for any one-bucket
// distribution), the Prometheus text exposition, and the Tracer's
// bounded-buffer drop accounting, ship/inject round trip, and Chrome
// trace-event JSON shape (validated with the in-repo JsonValue parser —
// the same well-formedness bar the CI obs-smoke job applies with an
// external parser).
//
// All Tracer tests run against the process-global instance; each test
// Enables a fresh recording (which clears prior buffers) and Drains it,
// so ordering between tests does not leak state.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "dcc/common/json.h"
#include "dcc/obs/histogram.h"
#include "dcc/obs/metrics.h"
#include "dcc/obs/trace.h"

namespace dcc::obs {
namespace {

// --- Pow2Histogram ---------------------------------------------------------

TEST(ObsHistogramTest, EmptyHistogramQuantilesAreZero) {
  Pow2Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 0.0);
}

TEST(ObsHistogramTest, SingleSampleReportsBucketUpperBound) {
  Pow2Histogram h;
  h.Record(100);  // bucket [64, 128)
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.sum(), 100);
  // One sample carries no intra-bucket information; every quantile is the
  // bucket's (conservative) upper bound.
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 128.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 128.0);
}

// The regression the promotion fixed: with every sample in ONE bucket, the
// old QuantileUpperMs collapsed p50 and p99 to the same upper bound.
// Interpolation must spread quantiles across the bucket instead.
TEST(ObsHistogramTest, SingleBucketQuantilesInterpolate) {
  Pow2Histogram h;
  for (int i = 0; i < 100; ++i) h.Record(100);  // all in [64, 128)
  const double p50 = h.Quantile(0.50);
  const double p99 = h.Quantile(0.99);
  EXPECT_GT(p50, 64.0);
  EXPECT_LT(p50, p99);
  EXPECT_LE(p99, 128.0);
  // rank 50 of 100 sits half way into the bucket: 64 + 64 * 50/100.
  EXPECT_DOUBLE_EQ(p50, 96.0);
}

TEST(ObsHistogramTest, QuantilesAcrossBucketsAreMonotone) {
  Pow2Histogram h;
  for (int i = 0; i < 90; ++i) h.Record(10);    // bucket [8, 16)
  for (int i = 0; i < 10; ++i) h.Record(5000);  // bucket [4096, 8192)
  const double p50 = h.Quantile(0.50);
  const double p95 = h.Quantile(0.95);
  EXPECT_GE(p50, 8.0);
  EXPECT_LE(p50, 16.0);
  EXPECT_GE(p95, 4096.0);
  EXPECT_LE(p95, 8192.0);
  EXPECT_EQ(h.count(), 100);
}

TEST(ObsHistogramTest, ZeroAndNegativeLandInBucketZero) {
  Pow2Histogram h;
  h.Record(0);
  h.Record(-17);
  h.Record(1);
  EXPECT_EQ(h.count(), 3);
  EXPECT_LE(h.Quantile(0.5), Pow2Histogram::BucketUpper(0));
}

// --- MetricsRegistry -------------------------------------------------------

TEST(ObsMetricsTest, CounterAndGaugeExposition) {
  auto& reg = MetricsRegistry::Global();
  Counter& c = reg.GetCounter("obs_test_widgets_total", "Widgets made");
  c.Add(3);
  c.Add();
  Gauge& g = reg.GetGauge("obs_test_depth", "Current depth");
  g.Set(7);
  std::ostringstream os;
  reg.PrintText(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("# HELP obs_test_widgets_total Widgets made\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE obs_test_widgets_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_widgets_total 4\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE obs_test_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("obs_test_depth 7\n"), std::string::npos);
}

TEST(ObsMetricsTest, HistogramExpositionIsCumulative) {
  auto& reg = MetricsRegistry::Global();
  Pow2Histogram& h =
      reg.GetHistogram("obs_test_latency_us", "Test latency");
  h.Record(3);    // bucket [2, 4)
  h.Record(3);
  h.Record(100);  // bucket [64, 128)
  std::ostringstream os;
  reg.PrintText(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("# TYPE obs_test_latency_us histogram\n"),
            std::string::npos);
  // Cumulative: the le="4" bucket holds 2, everything from le="128" on
  // (and +Inf) holds all 3.
  EXPECT_NE(text.find("obs_test_latency_us_bucket{le=\"4\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_latency_us_bucket{le=\"128\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_latency_us_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_latency_us_sum 106\n"), std::string::npos);
  EXPECT_NE(text.find("obs_test_latency_us_count 3\n"), std::string::npos);
}

TEST(ObsMetricsTest, SameNameSameHandle) {
  auto& reg = MetricsRegistry::Global();
  Counter& a = reg.GetCounter("obs_test_stable", "x");
  Counter& b = reg.GetCounter("obs_test_stable", "different help ignored");
  EXPECT_EQ(&a, &b);
}

// Asking for an existing name under a different kind must not crash or
// corrupt the registered metric — it yields a detached fallback handle.
TEST(ObsMetricsTest, KindMismatchYieldsFallback) {
  auto& reg = MetricsRegistry::Global();
  Counter& c = reg.GetCounter("obs_test_kind_clash", "counter first");
  c.Add(5);
  Gauge& g = reg.GetGauge("obs_test_kind_clash", "gauge second");
  g.Set(999);
  EXPECT_EQ(c.value(), 5);
  std::ostringstream os;
  reg.PrintText(os);
  EXPECT_NE(os.str().find("obs_test_kind_clash 5\n"), std::string::npos);
}

// --- Tracer ----------------------------------------------------------------

TEST(ObsTracerTest, DropNewKeepsPrefixAndCountsDrops) {
  Tracer& t = Tracer::Global();
  t.Enable(/*ring_capacity=*/8);
  const std::uint32_t id = t.Intern("obs_test.drop");
  for (int i = 0; i < 20; ++i) t.Emit(id, EventKind::kCounter, i);
  std::ostringstream os;
  const TraceSummary sum = t.Drain(os);
  EXPECT_EQ(sum.events, 8);
  EXPECT_EQ(sum.dropped, 12);
  EXPECT_EQ(sum.threads, 1);
  EXPECT_EQ(sum.ranks, 0);
  // Drop-new: the surviving events are the FIRST 8 (values 0..7), not an
  // arbitrary suffix.
  const JsonValue doc = JsonValue::Parse(os.str());
  int data_events = 0;
  for (const JsonValue& e : doc.Find("traceEvents")->GetArray()) {
    if (e.GetString("ph", "") != "C") continue;  // skip metadata
    const JsonValue* args = e.Find("args");
    ASSERT_NE(args, nullptr);
    EXPECT_LT(args->GetNumber("value", 99.0), 8.0);
    ++data_events;
  }
  EXPECT_EQ(data_events, 8);
}

TEST(ObsTracerTest, DrainWritesWellFormedChromeTrace) {
  Tracer& t = Tracer::Global();
  t.Enable();
  {
    DCC_TRACE_SPAN("obs_test.outer");
    DCC_TRACE_COUNTER("obs_test.gauge", 42);
    DCC_TRACE_INSTANT("obs_test.mark");
  }
  std::ostringstream os;
  const TraceSummary sum = t.Drain(os);
  EXPECT_EQ(sum.events, 4);  // B + E + C + i
  EXPECT_EQ(sum.spans, 1);
  EXPECT_EQ(sum.counters, 2);
  EXPECT_FALSE(Tracer::enabled());

  const JsonValue doc = JsonValue::Parse(os.str());
  const JsonValue* arr = doc.Find("traceEvents");
  ASSERT_NE(arr, nullptr);
  int begins = 0, ends = 0, counters = 0, instants = 0, meta = 0;
  for (const JsonValue& e : arr->GetArray()) {
    const std::string ph = e.GetString("ph", "");
    if (ph == "B") {
      ++begins;
      EXPECT_EQ(e.GetString("name", ""), "obs_test.outer");
    } else if (ph == "E") {
      ++ends;
    } else if (ph == "C") {
      ++counters;
      const JsonValue* args = e.Find("args");
      ASSERT_NE(args, nullptr);
      EXPECT_DOUBLE_EQ(args->GetNumber("value", -1.0), 42.0);
    } else if (ph == "i") {
      ++instants;
    } else if (ph == "M") {
      ++meta;
    }
    if (ph != "M") {
      EXPECT_GE(e.GetNumber("ts", -1.0), 0.0);
      EXPECT_GE(e.GetNumber("pid", -1.0), 0.0);
    }
  }
  EXPECT_EQ(begins, 1);
  EXPECT_EQ(ends, 1);
  EXPECT_EQ(counters, 1);
  EXPECT_EQ(instants, 1);
  EXPECT_GE(meta, 1);  // process_name for the coordinator
}

TEST(ObsTracerTest, ShipInjectRoundTripStitchesRank) {
  Tracer& t = Tracer::Global();
  // "Rank" recording: capture a couple of events and ship them.
  t.Enable();
  const std::uint32_t id = t.Intern("obs_test.rank_work");
  t.Emit(id, EventKind::kBegin);
  t.Emit(id, EventKind::kEnd);
  const std::string ship = t.EncodeShip();
  // "Coordinator" recording: fresh buffers, then stitch the dump in.
  t.Enable();
  t.Emit(t.Intern("obs_test.coord_work"), EventKind::kInstant);
  ASSERT_TRUE(t.InjectShip(2, ship));
  std::ostringstream os;
  const TraceSummary sum = t.Drain(os);
  EXPECT_EQ(sum.events, 3);  // 1 local + 2 injected
  EXPECT_EQ(sum.ranks, 1);
  const JsonValue doc = JsonValue::Parse(os.str());
  bool saw_rank_event = false, saw_rank_name = false;
  for (const JsonValue& e : doc.Find("traceEvents")->GetArray()) {
    if (e.GetString("name", "") == "obs_test.rank_work" &&
        e.GetNumber("pid", -1.0) == 2.0) {
      saw_rank_event = true;
    }
    if (e.GetString("ph", "") == "M" && e.GetNumber("pid", -1.0) == 2.0) {
      saw_rank_name = true;
    }
  }
  EXPECT_TRUE(saw_rank_event);
  EXPECT_TRUE(saw_rank_name);
}

TEST(ObsTracerTest, InjectShipRejectsMalformedPayloads) {
  Tracer& t = Tracer::Global();
  t.Enable();
  EXPECT_FALSE(t.InjectShip(1, ""));
  EXPECT_FALSE(t.InjectShip(1, "definitely not a ship payload"));
  // A hostile event count must be rejected before it allocates.
  std::string hostile;
  hostile.append(4, '\0');                      // n_names = 0
  hostile += std::string("\x7f\xff\xff\xff", 4);  // n_threads, absurd
  EXPECT_FALSE(t.InjectShip(1, hostile));
  std::ostringstream os;
  EXPECT_EQ(t.Drain(os).ranks, 0);
}

TEST(ObsTracerTest, DisabledEmitIsANoOp) {
  Tracer& t = Tracer::Global();
  t.Disable();
  ASSERT_FALSE(Tracer::enabled());
  const std::uint32_t id = t.Intern("obs_test.silent");
  t.Emit(id, EventKind::kInstant);       // must not record
  DCC_TRACE_COUNTER("obs_test.silent_macro", 1);  // must not record
  t.Enable();
  t.Emit(id, EventKind::kInstant);       // the only recorded event
  std::ostringstream os;
  const TraceSummary sum = t.Drain(os);
  EXPECT_EQ(sum.events, 1);
  EXPECT_EQ(sum.dropped, 0);
}

TEST(ObsTracerTest, InternIsStableAcrossEnableCycles) {
  Tracer& t = Tracer::Global();
  const std::uint32_t a = t.Intern("obs_test.stable_name");
  t.Enable();
  const std::uint32_t b = t.Intern("obs_test.stable_name");
  std::ostringstream os;
  t.Drain(os);
  EXPECT_EQ(a, b);
}

TEST(ObsSummaryTest, PrintJsonShape) {
  TraceSummary sum;
  sum.events = 10;
  sum.spans = 4;
  sum.counters = 2;
  sum.dropped = 1;
  sum.threads = 3;
  sum.ranks = 2;
  sum.overhead_ns = 1234;
  std::ostringstream os;
  sum.PrintJson(os);
  EXPECT_EQ(os.str(),
            "{\"schema\": \"dcc.obs.v1\", \"events\": 10, \"spans\": 4, "
            "\"counters\": 2, \"dropped\": 1, \"threads\": 3, \"ranks\": 2, "
            "\"overhead_ns\": 1234}");
}

}  // namespace
}  // namespace dcc::obs
