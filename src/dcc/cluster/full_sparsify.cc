#include "dcc/cluster/full_sparsify.h"

#include <algorithm>
#include <cmath>

#include "dcc/common/math_util.h"

namespace dcc::cluster {

FullSparsifyResult FullSparsify(sim::Exec& ex, const Profile& prof,
                                const std::vector<std::size_t>& members,
                                const std::vector<ClusterId>& cluster_of,
                                int gamma, std::uint64_t nonce) {
  const Round start = ex.rounds();
  FullSparsifyResult res;
  res.levels.push_back(members);

  const int k = CeilLog43(std::max(1.0, static_cast<double>(gamma)));
  double lambda = static_cast<double>(gamma);
  for (int i = 1; i <= k; ++i) {
    const int lam = std::max(1, static_cast<int>(std::ceil(lambda)));
    SparsifyResult r = Sparsify(ex, prof, res.levels.back(), cluster_of, lam,
                                /*clustered=*/true,
                                HashCombine(nonce, 0x2000u + i));
    const int stage_offset = static_cast<int>(res.stages.size());
    for (auto& st : r.stages) res.stages.push_back(std::move(st));
    for (const auto& [child, link] : r.links) {
      res.links[child] = ParentLink{link.parent, link.stage + stage_offset};
    }
    res.levels.push_back(std::move(r.returned));
    lambda *= 0.75;
    if (prof.early_stop && res.levels.back().size() ==
                               res.levels[res.levels.size() - 2].size()) {
      // Fixpoint: further sparsification cannot retire anyone (instrumented
      // shortcut; the level chain below the fixpoint is constant).
      break;
    }
  }
  res.rounds = ex.rounds() - start;
  return res;
}

}  // namespace dcc::cluster
