// The three stock mobility models (MANET literature staples):
//
//  * RandomWaypoint — each node walks to a uniformly drawn target at a
//    per-leg uniform speed, pauses, re-targets. The default model of the
//    MANET clustering literature.
//  * GaussMarkov — velocity follows a per-axis AR(1) process around a
//    per-node mean velocity; memory = 0 degenerates to a memoryless random
//    walk, memory -> 1 to near-ballistic motion. Boundaries reflect.
//  * ReferencePointGroup — nodes are partitioned into groups; each group's
//    reference point does waypoint motion and members jitter inside a disc
//    around it (RPGM). Models platoons/swarms: clusters should survive
//    epochs far better than under independent motion.
//
// All speeds are distance units per unit of simulated time (one epoch of
// length dt covers speed * dt).
#pragma once

#include <cstdint>
#include <vector>

#include "dcc/common/rng.h"
#include "dcc/mobility/model.h"

namespace dcc::mobility {

class RandomWaypoint final : public MobilityModel {
 public:
  struct Config {
    Box world;
    double vmin = 0.1;
    double vmax = 1.0;
    double pause = 0.0;  // dwell time at a reached waypoint
  };
  RandomWaypoint(Config cfg, std::uint64_t seed);

  const Box& world() const override { return cfg_.world; }
  void Init(std::span<const Vec2> pos) override;
  void Step(double dt, std::span<Vec2> pos,
            std::span<const char> active) override;
  Vec2 Respawn(std::size_t i) override;

 private:
  struct NodeState {
    Vec2 target;
    double speed = 0.0;
    double pause_left = 0.0;
  };
  void Retarget(NodeState& s);
  Vec2 UniformInWorld();

  Config cfg_;
  Xoshiro256ss rng_;
  std::vector<NodeState> nodes_;
};

class GaussMarkov final : public MobilityModel {
 public:
  struct Config {
    Box world;
    double mean_speed = 0.5;
    double sigma = 0.25;    // per-axis velocity noise scale
    double memory = 0.75;   // AR(1) coefficient in [0, 1)
  };
  GaussMarkov(Config cfg, std::uint64_t seed);

  const Box& world() const override { return cfg_.world; }
  void Init(std::span<const Vec2> pos) override;
  void Step(double dt, std::span<Vec2> pos,
            std::span<const char> active) override;
  Vec2 Respawn(std::size_t i) override;

 private:
  struct NodeState {
    Vec2 vel;       // current velocity
    Vec2 mean_vel;  // the AR(1) attractor (random heading, mean_speed)
  };
  void Reseed(NodeState& s);

  Config cfg_;
  Xoshiro256ss rng_;
  std::vector<NodeState> nodes_;
};

class ReferencePointGroup final : public MobilityModel {
 public:
  struct Config {
    Box world;
    int group_size = 8;   // nodes per group (last group may be smaller)
    double vmin = 0.1;
    double vmax = 1.0;    // reference-point waypoint speeds
    double pause = 0.0;
    double radius = 1.0;  // max member offset from the reference point
  };
  ReferencePointGroup(Config cfg, std::uint64_t seed);

  const Box& world() const override { return cfg_.world; }
  void Init(std::span<const Vec2> pos) override;
  void Step(double dt, std::span<Vec2> pos,
            std::span<const char> active) override;
  Vec2 Respawn(std::size_t i) override;

 private:
  std::size_t GroupOf(std::size_t i) const {
    return i / static_cast<std::size_t>(cfg_.group_size);
  }
  Vec2 JitterOffset(Vec2 offset, double dt);
  Vec2 MemberPosition(std::size_t i) const;

  Config cfg_;
  Xoshiro256ss rng_;
  RandomWaypoint refs_;            // reference points, one per group
  std::vector<Vec2> ref_pos_;      // current reference-point positions
  std::vector<char> ref_active_;   // all-ones (reference points never churn)
  std::vector<Vec2> offset_;       // per-node offset from its reference
};

}  // namespace dcc::mobility
