// bench_parallel_rounds — the scaling axis of the sharded round engine:
// one grid-mode SINR round decomposed across K shards on the shared
// WorkerPool, versus the same round serial.
//
// For each n in {4096, 16384, 65536} (--full extends the ladder to 262144
// and 1048576) and each transmitter regime — dense (every 8th node
// transmits, the acceptance-target workload) and sparse (every 64th) —
// the bench walks a thread ladder {1, 2, 4, ..., hw}: it first pins the
// parallel round's receptions bit-identical to threads=1, then times
// ms/round and reports the speedup over the serial engine. Per-shard
// cumulative loads come straight from Engine::Stats.
//
// Output: a human table by default; with --compare_json, one JSON object
// per line (dcc.bench.parallel_rounds.v1) — CI uploads this as
// BENCH_parallel.json so the bench trajectory has per-commit data points.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "dcc/parallel/worker_pool.h"
#include "dcc/sinr/engine.h"
#include "dcc/workload/generators.h"

namespace {

using Clock = std::chrono::steady_clock;
using dcc::sinr::Engine;
using dcc::sinr::Network;
using dcc::sinr::Reception;

Network MakeNet(int n) {
  dcc::sinr::Params params = dcc::sinr::Params::Default();
  params.id_space = std::max<std::int64_t>(4 * n, 1 << 16);
  auto pts = dcc::workload::UniformSquare(
      n, std::sqrt(static_cast<double>(n)), 42);
  return dcc::workload::MakeNetwork(std::move(pts), params, 7);
}

void Split(std::size_t n, std::size_t period, std::vector<std::size_t>& tx,
           std::vector<std::size_t>& listeners) {
  tx.clear();
  listeners.clear();
  for (std::size_t i = 0; i < n; ++i) {
    (i % period == 0 ? tx : listeners).push_back(i);
  }
}

bool SameReceptions(const std::vector<Reception>& a,
                    const std::vector<Reception>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].listener != b[i].listener || a[i].sender != b[i].sender ||
        a[i].sinr != b[i].sinr) {
      return false;
    }
  }
  return true;
}

// ms per round, over enough rounds to fill ~300 ms of wall clock.
double TimeRounds(const Engine& eng, const std::vector<std::size_t>& tx,
                  const std::vector<std::size_t>& listeners) {
  std::vector<Reception> out;
  const auto w0 = Clock::now();
  eng.StepInto(tx, listeners, out);  // warmup sizes the scratch
  const double warm_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - w0).count();
  const int rounds = std::max(3, static_cast<int>(300.0 / (warm_ms + 0.01)));
  const auto t0 = Clock::now();
  for (int r = 0; r < rounds; ++r) eng.StepInto(tx, listeners, out);
  const double ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  return ms / rounds;
}

std::vector<int> ThreadLadder() {
  const int hw = dcc::parallel::WorkerPool::Shared().parallelism();
  std::vector<int> ladder{1, 2};
  for (int t = 4; t <= hw; t *= 2) ladder.push_back(t);
  if (std::find(ladder.begin(), ladder.end(), hw) == ladder.end()) {
    ladder.push_back(hw);
  }
  std::sort(ladder.begin(), ladder.end());
  return ladder;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool full = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--compare_json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--full") == 0) {
      full = true;
    } else {
      std::cerr << "usage: bench_parallel_rounds [--compare_json] [--full]\n";
      return 2;
    }
  }

  std::vector<int> sizes{4096, 16384, 65536};
  if (full) {
    sizes.push_back(262144);
    sizes.push_back(1048576);
  }
  const std::vector<int> ladder = ThreadLadder();

  if (!json) {
    std::cout << "parallel sharded rounds (grid engine, shared pool; hw "
                 "parallelism "
              << dcc::parallel::WorkerPool::Shared().parallelism() << ")\n"
              << "      n  regime   threads  ms/round   speedup  identical\n";
  }

  int bad = 0;
  for (const int n : sizes) {
    const Network net = MakeNet(n);
    std::vector<std::size_t> tx, listeners;
    for (const auto& [regime, period] :
         {std::pair<const char*, std::size_t>{"dense", 8},
          std::pair<const char*, std::size_t>{"sparse", 64}}) {
      Split(net.size(), period, tx, listeners);
      const Engine serial(net, {.mode = Engine::Mode::kGrid});
      const std::vector<Reception> want = serial.Step(tx, listeners);
      const double serial_ms = TimeRounds(serial, tx, listeners);
      for (const int threads : ladder) {
        Engine::Options opts{.mode = Engine::Mode::kGrid};
        opts.threads = threads;
        const Engine par(net, opts);
        const bool identical = SameReceptions(want, par.Step(tx, listeners));
        bad += identical ? 0 : 1;
        const double ms =
            threads == 1 ? serial_ms : TimeRounds(par, tx, listeners);
        const double speedup = serial_ms / ms;
        if (json) {
          std::cout << "{\"schema\": \"dcc.bench.parallel_rounds.v1\", "
                    << "\"n\": " << n << ", \"regime\": \"" << regime
                    << "\", \"tx\": " << tx.size()
                    << ", \"listeners\": " << listeners.size()
                    << ", \"threads\": " << threads << ", \"ms_per_round\": "
                    << ms << ", \"speedup\": " << speedup
                    << ", \"identical\": " << (identical ? "true" : "false")
                    << "}\n";
        } else {
          std::printf("%7d  %-7s  %7d  %8.3f  %7.2fx  %s\n", n, regime,
                      threads, ms, speedup, identical ? "yes" : "NO");
        }
      }
    }
  }
  if (bad > 0) {
    std::cerr << "bench_parallel_rounds: " << bad
              << " configurations diverged from serial receptions\n";
    return 1;
  }
  return 0;
}
