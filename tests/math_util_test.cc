#include "dcc/common/math_util.h"

#include <gtest/gtest.h>

namespace dcc {
namespace {

TEST(CeilLog2Test, KnownValues) {
  EXPECT_EQ(CeilLog2(1), 0);
  EXPECT_EQ(CeilLog2(2), 1);
  EXPECT_EQ(CeilLog2(3), 2);
  EXPECT_EQ(CeilLog2(4), 2);
  EXPECT_EQ(CeilLog2(5), 3);
  EXPECT_EQ(CeilLog2(1 << 20), 20);
  EXPECT_EQ(CeilLog2((1 << 20) + 1), 21);
}

TEST(LogStarTest, TowerValues) {
  EXPECT_EQ(LogStar(1), 0);
  EXPECT_EQ(LogStar(2), 1);
  EXPECT_EQ(LogStar(4), 2);
  EXPECT_EQ(LogStar(16), 3);
  EXPECT_EQ(LogStar(65536), 4);
  EXPECT_EQ(LogStar(65537), 5);
  EXPECT_EQ(LogStar(1e300), 5);
}

TEST(CeilLog43Test, KnownValues) {
  EXPECT_EQ(CeilLog43(1), 0);
  // (4/3)^3 = 2.37; (4/3)^4 = 3.16
  EXPECT_EQ(CeilLog43(3), 4);
  EXPECT_GE(CeilLog43(16), 9);  // (4/3)^9 = 13.3, (4/3)^10 = 17.7
  EXPECT_LE(CeilLog43(16), 10);
}

TEST(IsPrimeTest, SmallValues) {
  EXPECT_FALSE(IsPrime(0));
  EXPECT_FALSE(IsPrime(1));
  EXPECT_TRUE(IsPrime(2));
  EXPECT_TRUE(IsPrime(3));
  EXPECT_FALSE(IsPrime(4));
  EXPECT_TRUE(IsPrime(97));
  EXPECT_FALSE(IsPrime(91));  // 7*13
  EXPECT_TRUE(IsPrime(7919));
}

TEST(PrimesInRangeTest, MatchesSieve) {
  const auto primes = PrimesInRange(10, 30);
  const std::vector<std::int64_t> want{11, 13, 17, 19, 23, 29};
  EXPECT_EQ(primes, want);
}

TEST(PrimesInRangeTest, EmptyRange) {
  EXPECT_TRUE(PrimesInRange(24, 28).empty());
  EXPECT_TRUE(PrimesInRange(20, 10).empty());
}

TEST(NextPrimeTest, KnownValues) {
  EXPECT_EQ(NextPrime(0), 2);
  EXPECT_EQ(NextPrime(14), 17);
  EXPECT_EQ(NextPrime(17), 17);
  EXPECT_EQ(NextPrime(90), 97);
}

}  // namespace
}  // namespace dcc
