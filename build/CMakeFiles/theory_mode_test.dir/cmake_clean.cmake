file(REMOVE_RECURSE
  "CMakeFiles/theory_mode_test.dir/tests/theory_mode_test.cc.o"
  "CMakeFiles/theory_mode_test.dir/tests/theory_mode_test.cc.o.d"
  "theory_mode_test"
  "theory_mode_test.pdb"
  "theory_mode_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theory_mode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
