file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_sparsification.dir/bench/bench_fig3_sparsification.cc.o"
  "CMakeFiles/bench_fig3_sparsification.dir/bench/bench_fig3_sparsification.cc.o.d"
  "bench_fig3_sparsification"
  "bench_fig3_sparsification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_sparsification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
