#include "dcc/sinr/propagation.h"

#include <algorithm>
#include <cmath>

#include "dcc/common/rng.h"
#include "dcc/sinr/network.h"

namespace dcc::sinr {

// --- PathLossModel ----------------------------------------------------------

PathLossModel::PathLossModel(const Params& params)
    : power_(params.power),
      alpha_(params.alpha),
      alpha_is_3_(params.alpha == 3.0) {
  params.Validate();
}

double PathLossModel::GainFromDistanceSq(double d2, NodeId, NodeId) const {
  return GainD2(d2);
}

double PathLossModel::MaxGain(double d_lo) const {
  return GainD2(d_lo * d_lo);
}

double PathLossModel::MinGain(double d_hi) const {
  return GainD2(d_hi * d_hi);
}

// --- LogUniformShadowingModel -----------------------------------------------

LogUniformShadowingModel::LogUniformShadowingModel(const Params& params,
                                                   double spread,
                                                   std::uint64_t seed)
    : PathLossModel(params), spread_(spread), seed_(seed) {
  DCC_REQUIRE(spread_ > 0.0, "shadowing spread must be > 0");
}

double LogUniformShadowingModel::Factor(NodeId id_a, NodeId id_b) const {
  const auto lo = static_cast<std::uint64_t>(std::min(id_a, id_b));
  const auto hi = static_cast<std::uint64_t>(std::max(id_a, id_b));
  const double u =
      static_cast<double>(HashWords(seed_, lo, hi) >> 11) * 0x1.0p-53;
  const double log_span = std::log(1.0 + spread_);
  return std::exp((2.0 * u - 1.0) * log_span);
}

double LogUniformShadowingModel::GainFromDistanceSq(double d2, NodeId id_a,
                                                    NodeId id_b) const {
  return GainD2(d2) * Factor(id_a, id_b);
}

double LogUniformShadowingModel::MaxGain(double d_lo) const {
  return GainD2(d_lo * d_lo) * (1.0 + spread_);
}

double LogUniformShadowingModel::MinGain(double d_hi) const {
  return GainD2(d_hi * d_hi) / (1.0 + spread_);
}

// --- TheoryModel ------------------------------------------------------------

TheoryModel::TheoryModel(const Params& params, double cutoff)
    : PathLossModel(params),
      cutoff_(cutoff > 0.0 ? cutoff : 8.0 * params.TransmissionRange()) {
  DCC_REQUIRE(cutoff_ >= params.TransmissionRange(),
              "theory cutoff must cover the transmission range");
}

double TheoryModel::GainFromDistanceSq(double d2, NodeId, NodeId) const {
  if (d2 > cutoff_ * cutoff_) return 0.0;
  return GainD2(d2);
}

double TheoryModel::MaxGain(double d_lo) const {
  if (d_lo > cutoff_) return 0.0;
  return GainD2(d_lo * d_lo);
}

double TheoryModel::MinGain(double d_hi) const {
  if (d_hi > cutoff_) return 0.0;
  return GainD2(d_hi * d_hi);
}

// --- Factory ----------------------------------------------------------------

std::shared_ptr<const PropagationModel> MakeDefaultModel(
    const Params& params, const Shadowing& shadowing) {
  DCC_REQUIRE(shadowing.spread >= 0.0, "shadowing spread must be >= 0");
  if (shadowing.spread > 0.0) {
    return std::make_shared<LogUniformShadowingModel>(params, shadowing.spread,
                                                      shadowing.seed);
  }
  return std::make_shared<PathLossModel>(params);
}

}  // namespace dcc::sinr
