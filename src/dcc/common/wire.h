// Length-prefixed frame I/O over stream sockets — the transport under the
// scenario service's JSON protocol (src/dcc/service). A frame is a 4-byte
// big-endian payload length followed by the payload bytes; framing lets
// both ends carry arbitrary JSON (which has no self-delimiting wire form)
// over one connection without a streaming parser.
//
// All calls retry EINTR and handle partial reads/writes; writes use
// MSG_NOSIGNAL so a peer that vanished surfaces as an exception, not
// SIGPIPE. Errors (including a frame over kMaxFrameBytes) throw
// WireError. These are blocking calls — the service gives every
// connection its own thread.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

namespace dcc::wire {

// Upper bound on one frame's payload. Reports over a sweep of big runs are
// large but bounded; 64 MiB rejects a corrupted or hostile length word
// before it becomes an allocation.
inline constexpr std::size_t kMaxFrameBytes = 64u << 20;

class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

// Reads one frame into *payload. Returns false on a clean EOF at a frame
// boundary (the peer closed); throws WireError on a short frame, an I/O
// error, or an oversized length prefix.
bool ReadFrame(int fd, std::string* payload);

// Writes one frame. Throws WireError when the peer is gone or the payload
// exceeds kMaxFrameBytes.
void WriteFrame(int fd, const std::string& payload);

// --- Compact binary payload codec. ---
//
// The distributed halo exchange (src/dcc/distrib) ships per-round
// transmitter slices between ranks; JSON would both bloat the frames and
// lose the bit-exact doubles the serial-equivalence contract needs. The
// codec is deliberately tiny: fixed-width big-endian integers, doubles as
// their IEEE-754 bit patterns (byte-exact round trip, NaNs included), and
// length-prefixed byte strings. Writers append to an internal buffer that
// becomes one frame payload; readers cursor over a received payload and
// throw WireError on any over-read — a malformed frame can never read past
// the buffer.

class PayloadWriter {
 public:
  void U8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }

  void U32(std::uint32_t v) {
    buf_.push_back(static_cast<char>(v >> 24));
    buf_.push_back(static_cast<char>(v >> 16));
    buf_.push_back(static_cast<char>(v >> 8));
    buf_.push_back(static_cast<char>(v));
  }

  void U64(std::uint64_t v) {
    U32(static_cast<std::uint32_t>(v >> 32));
    U32(static_cast<std::uint32_t>(v));
  }

  // IEEE-754 bit pattern: the value read back is bitwise-equal to the value
  // written, which is what keeps distributed receptions byte-identical.
  void F64(double v) { U64(std::bit_cast<std::uint64_t>(v)); }

  void Str(std::string_view s);
  void Bytes(const void* data, std::size_t len);

  std::size_t size() const { return buf_.size(); }
  const std::string& buffer() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  std::string buf_;
};

class PayloadReader {
 public:
  explicit PayloadReader(std::string_view payload) : buf_(payload) {}

  std::uint8_t U8() {
    Need(1);
    return static_cast<std::uint8_t>(buf_[pos_++]);
  }

  std::uint32_t U32();
  std::uint64_t U64();
  double F64() { return std::bit_cast<double>(U64()); }
  // A length-prefixed byte string; the length is validated against the
  // remaining payload before anything is copied.
  std::string Str();

  std::size_t remaining() const { return buf_.size() - pos_; }
  bool AtEnd() const { return pos_ == buf_.size(); }
  // Decoders call this last: trailing bytes mean the two ends disagree
  // about the message layout, which must fail loudly, not silently.
  void ExpectEnd() const;

 private:
  void Need(std::size_t n) const;

  std::string_view buf_;
  std::size_t pos_ = 0;
};

}  // namespace dcc::wire
