// The resident scenario service ("dccd"): experiments as *requests*.
//
// PR 2 made experiments values (ScenarioSpec); this layer makes them
// requests against a long-lived process that amortizes everything a
// one-shot `dcc_run` pays per invocation — process startup, topology
// generation, index build — across all traffic. A Service owns a Unix
// domain listening socket and serves length-prefixed JSON frames
// (dcc::wire): one frame in, one frame out, requests answered in order
// per connection; concurrency comes from connections.
//
// Request object:
//   {"op": "run"|"stats"|"ping"|"metrics", "id": N,
//    "spec": "<flag line>", "seed": S}
//     op     defaults to "run". `id` is echoed back verbatim (default 0).
//     spec   (run) the ScenarioSpec flag grammar — the same line dcc_run
//            takes. Sweep specs are rejected: a service request is exactly
//            one (spec, seed) run; clients expand grids themselves.
//     seed   (run) defaults to the spec's first seed.
// Response object:
//   run:   {"id": N, "ok": true, "cached": "result"|"topology"|"none",
//           "report": <dcc.run_report.v1 object, always the last field>}
//   stats: {"id": N, "ok": true, "stats": <dcc.service.v1 object>}
//   metrics: {"id": N, "ok": true, "metrics": "<text exposition>"}
//          — the Prometheus-style dump (service counters, the request
//          latency histogram, and the process MetricsRegistry) as one
//          JSON string.
//   ping:  {"id": N, "ok": true}
//   error: {"id": N, "ok": false, "error": "..."}  (bad spec, unknown op).
//          `ok` means "a report was produced" — a run whose validator
//          failed still answers ok = true with report.ok false.
//          A run rejected because the service is draining answers with a
//          STRUCTURED error — the one machine-actionable rejection (the
//          client's move is "retry against the next instance", not "fix
//          the request"), so the code must be a stable field, not a
//          substring of prose (pinned in docs/REPORT_SCHEMA.md):
//            {"id": N, "ok": false,
//             "error": {"code": "draining", "message": "..."}}
//
// Execution path of a run request:
//   result cache (CanonicalKey(spec)+seed -> serialized report; a hit
//   answers with ZERO engine rounds) -> bounded AdmissionQueue onto
//   WorkerPool::Shared() (backpressure blocks the connection thread, and
//   engines inside a request shard their rounds on the same pool, so
//   service traffic, sweeps, and shards share one set of threads) ->
//   topology cache (TopologyCacheKey -> generated sinr::Network, shared
//   read-only across runs; single-flight, so simultaneous requests for
//   one topology batch onto one build) -> RunScenarioOnNetwork.
//
// Drain (SIGTERM/SIGINT in dccd, or Drain() embedded): stop accepting
// connections, shut down reads so no new frames arrive, let every
// received request finish and flush its response, join all threads. A
// second Drain is a no-op.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "dcc/parallel/admission.h"
#include "dcc/scenario/scenario.h"
#include "dcc/service/cache.h"
#include "dcc/service/stats.h"
#include "dcc/sinr/network.h"

namespace dcc::service {

// A run rejected by the draining admission queue. Carries a stable machine
// code ("draining") that HandleRequest turns into the structured error
// frame instead of the plain-string form.
class DrainingError : public std::runtime_error {
 public:
  explicit DrainingError(const std::string& what)
      : std::runtime_error(what) {}
};

// The topology cache's content key: the coordinates that determine the
// generated network and nothing else — topology name + params, SINR
// parameters, shadowing, and the resolved id seed, under `seed`. Requests
// differing only in algorithm, engine options, faults, or round budget
// share the entry.
std::string TopologyCacheKey(const scenario::ScenarioSpec& spec,
                             std::uint64_t seed);

class Service {
 public:
  struct Options {
    std::string socket_path;        // required; unlinked + bound on Start
    int queue_capacity = 64;        // admitted-run bound (backpressure)
    std::size_t topology_cache = 64;    // entries (generated networks)
    std::size_t result_cache = 4096;    // entries (serialized reports)
  };

  explicit Service(Options opts);
  ~Service();  // drains if still serving

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  // Binds + listens + spawns the accept loop. Throws on socket errors
  // (stale socket files are unlinked first).
  void Start();

  // Graceful drain; blocks until every in-flight request finished and all
  // threads joined. Idempotent, callable from any thread (not a signal
  // handler — dccd routes signals through sigwait).
  void Drain();

  bool draining() const { return draining_.load(std::memory_order_acquire); }
  const std::string& socket_path() const { return opts_.socket_path; }

  ServiceStats Snapshot() const;

  // Prometheus-style text exposition: the service's own counters and the
  // request-latency histogram (derived from Snapshot()/latency_), then
  // everything in obs::MetricsRegistry::Global(). Served by the `metrics`
  // op and printed by `dcc_load --metrics`.
  void PrintMetricsText(std::ostream& os) const;

  // The structured error frame:
  //   {"id": N, "ok": false, "error": {"code": C, "message": M}}
  // Exposed so the schema-pinning test asserts the exact bytes the docs
  // promise.
  static std::string ErrorFrame(std::uint64_t id, const std::string& code,
                                const std::string& message);

 private:
  void AcceptLoop();
  void ConnectionLoop(int fd);
  // One frame in, one response out; never throws (errors become error
  // responses). Appends to counters.
  std::string HandleRequest(const std::string& frame);
  std::string HandleRun(std::uint64_t id, const std::string& spec_line,
                        const double* seed_field);

  Options opts_;
  parallel::AdmissionQueue admission_;
  ContentCache<sinr::Network> topology_cache_;
  ContentCache<std::string> result_cache_;

  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::chrono::steady_clock::time_point start_time_;

  std::mutex conn_mu_;
  std::vector<int> conn_fds_;            // open connections (guarded)
  std::vector<std::thread> conn_threads_;  // guarded; joined on Drain
  std::int64_t connections_total_ = 0;   // guarded

  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> drained_{false};
  std::atomic<std::int64_t> requests_{0};
  std::atomic<std::int64_t> runs_{0};
  std::atomic<std::int64_t> errors_{0};
  LatencyHistogram latency_;
};

}  // namespace dcc::service
