#include "dcc/common/spatial_grid.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "dcc/common/types.h"

namespace dcc {

namespace {

// Squared distance from x to the interval [lo, hi], per axis.
inline double AxisGapSq(double x, double lo, double hi) {
  const double g = x < lo ? lo - x : (x > hi ? x - hi : 0.0);
  return g * g;
}

// Max |x - q| over q in [lo, hi].
inline double AxisFarSq(double x, double lo, double hi) {
  const double g = std::max(std::abs(x - lo), std::abs(x - hi));
  return g * g;
}

}  // namespace

SpatialGrid::SpatialGrid(std::span<const Vec2> pts, double cell)
    : cell_(cell), inv_cell_(1.0 / cell) {
  DCC_REQUIRE(cell > 0.0, "SpatialGrid: cell must be > 0");
  InitTiles(pts, BoundingBox(pts));
}

SpatialGrid::SpatialGrid(std::span<const Vec2> pts, double cell,
                         const Box& coverage)
    : cell_(cell), inv_cell_(1.0 / cell) {
  DCC_REQUIRE(cell > 0.0, "SpatialGrid: cell must be > 0");
  DCC_REQUIRE(coverage.hi.x >= coverage.lo.x && coverage.hi.y >= coverage.lo.y,
              "SpatialGrid: inverted coverage box");
  InitTiles(pts, coverage);
}

void SpatialGrid::InitTiles(std::span<const Vec2> pts, const Box& coverage) {
  lo_x_ = coverage.lo.x;
  lo_y_ = coverage.lo.y;
  // Guard against a cell far smaller than the point extent (e.g. a typo'd
  // engine option): the per-tile arrays would dwarf the point set.
  const std::int64_t max_tiles = std::min<std::int64_t>(
      std::max<std::int64_t>(1024, 64 * static_cast<std::int64_t>(pts.size())),
      std::numeric_limits<int>::max());
  const auto axis_tiles = [&](double extent) {
    const double raw = std::floor(extent / cell_);
    DCC_REQUIRE(raw < static_cast<double>(max_tiles),
                "SpatialGrid: cell too small for the point extent");
    return std::max<std::int64_t>(1, static_cast<std::int64_t>(raw) + 1);
  };
  const std::int64_t nx = axis_tiles(coverage.hi.x - lo_x_);
  const std::int64_t ny = axis_tiles(coverage.hi.y - lo_y_);
  DCC_REQUIRE(ny <= max_tiles / nx,
              "SpatialGrid: cell too small for the point extent");
  nx_ = static_cast<int>(nx);
  ny_ = static_cast<int>(ny);

  const std::size_t n = pts.size();
  tile_of_point_.resize(n);
  slot_of_point_.resize(n);
  buckets_.resize(static_cast<std::size_t>(tile_count()));
  // Counting pass so every bucket is allocated exactly once.
  std::vector<std::size_t> count(buckets_.size(), 0);
  for (std::size_t i = 0; i < n; ++i) {
    CheckCovered(pts[i]);
    const int t = TileAt(pts[i]);
    tile_of_point_[i] = t;
    ++count[static_cast<std::size_t>(t)];
  }
  for (std::size_t t = 0; t < buckets_.size(); ++t) {
    if (count[t] == 0) continue;
    buckets_[t].reserve(count[t]);
    occupied_.push_back(static_cast<int>(t));
  }
  for (std::size_t i = 0; i < n; ++i) {
    auto& bucket = buckets_[static_cast<std::size_t>(tile_of_point_[i])];
    slot_of_point_[i] = static_cast<std::uint32_t>(bucket.size());
    bucket.push_back(i);
  }
  live_count_ = n;
}

const std::vector<int>& SpatialGrid::occupied() const {
  if (occupied_dirty_) {
    std::sort(occupied_.begin(), occupied_.end());
    occupied_.erase(std::unique(occupied_.begin(), occupied_.end()),
                    occupied_.end());
    std::erase_if(occupied_, [&](int t) {
      return buckets_[static_cast<std::size_t>(t)].empty();
    });
    occupied_dirty_ = false;
  }
  return occupied_;
}

void SpatialGrid::Insert(std::size_t i, Vec2 p) {
  DCC_REQUIRE(i >= tile_of_point_.size() || tile_of_point_[i] == kErased,
              "SpatialGrid::Insert: slot already live");
  CheckCovered(p);
  ++generation_;
  if (i >= tile_of_point_.size()) {
    tile_of_point_.resize(i + 1, kErased);
    slot_of_point_.resize(i + 1, 0);
  }
  PushToTile(i, TileAt(p));
  ++live_count_;
}

double SpatialGrid::DistLoSq(Vec2 p, int tile) const {
  const int gx = tile % nx_, gy = tile / nx_;
  const double bx = lo_x_ + gx * cell_, by = lo_y_ + gy * cell_;
  return AxisGapSq(p.x, bx, bx + cell_) + AxisGapSq(p.y, by, by + cell_);
}

double SpatialGrid::DistHiSq(Vec2 p, int tile) const {
  const int gx = tile % nx_, gy = tile / nx_;
  const double bx = lo_x_ + gx * cell_, by = lo_y_ + gy * cell_;
  return AxisFarSq(p.x, bx, bx + cell_) + AxisFarSq(p.y, by, by + cell_);
}

double SpatialGrid::TileDistLoSq(int a, int b) const {
  const int ax = a % nx_, ay = a / nx_;
  const int bx = b % nx_, by = b / nx_;
  const double gx = cell_ * std::max(0, std::abs(ax - bx) - 1);
  const double gy = cell_ * std::max(0, std::abs(ay - by) - 1);
  return gx * gx + gy * gy;
}

double SpatialGrid::TileDistHiSq(int a, int b) const {
  const int ax = a % nx_, ay = a / nx_;
  const int bx = b % nx_, by = b / nx_;
  const double gx = cell_ * (std::abs(ax - bx) + 1);
  const double gy = cell_ * (std::abs(ay - by) + 1);
  return gx * gx + gy * gy;
}

double SpatialGrid::TileRangeDistLoSq(int a, int bx0, int by0, int bx1,
                                      int by1) const {
  const int ax = a % nx_, ay = a / nx_;
  const int dx = ax < bx0 ? bx0 - ax : (ax > bx1 ? ax - bx1 : 0);
  const int dy = ay < by0 ? by0 - ay : (ay > by1 ? ay - by1 : 0);
  const double gx = cell_ * std::max(0, dx - 1);
  const double gy = cell_ * std::max(0, dy - 1);
  return gx * gx + gy * gy;
}

double SpatialGrid::TileRangeDistHiSq(int a, int bx0, int by0, int bx1,
                                      int by1) const {
  const int ax = a % nx_, ay = a / nx_;
  const double gx = cell_ * (std::max(std::abs(ax - bx0), std::abs(ax - bx1)) + 1);
  const double gy = cell_ * (std::max(std::abs(ay - by0), std::abs(ay - by1)) + 1);
  return gx * gx + gy * gy;
}

}  // namespace dcc
