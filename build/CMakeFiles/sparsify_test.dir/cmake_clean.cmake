file(REMOVE_RECURSE
  "CMakeFiles/sparsify_test.dir/tests/sparsify_test.cc.o"
  "CMakeFiles/sparsify_test.dir/tests/sparsify_test.cc.o.d"
  "sparsify_test"
  "sparsify_test.pdb"
  "sparsify_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparsify_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
