file(REMOVE_RECURSE
  "CMakeFiles/radius_reduction_test.dir/tests/radius_reduction_test.cc.o"
  "CMakeFiles/radius_reduction_test.dir/tests/radius_reduction_test.cc.o.d"
  "radius_reduction_test"
  "radius_reduction_test.pdb"
  "radius_reduction_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radius_reduction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
