# Empty dependencies file for bench_fig1_broadcast_phases.
# This may be replaced when dependencies are built.
