// Imperfect labeling of clusters (Lemma 11).
//
// Given an r-clustered set of density Gamma, assigns every node a label in
// [1, Gamma] such that within each cluster every label is used at most c
// times, for a constant c. The construction runs FullSparsification, whose
// parent forest splits each cluster into O(1) trees, then performs a
// tree-labeling over the recorded exchange stages:
//
//  * bottom-up (stages replayed in execution order — children are always
//    linked at earlier stages than their parents): each child reports its
//    subtree size; parents accumulate.
//  * top-down (stages replayed in reverse, `label_reps` repetitions per
//    stage to address multiple same-stage children): each parent splits its
//    remaining label range among children; every node labels itself with
//    the head of its range.
//
// Within a tree labels are unique in [1, tree size]; across the O(1) trees
// of one cluster labels collide at most c times.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dcc/cluster/full_sparsify.h"

namespace dcc::cluster {

struct LabelingResult {
  std::unordered_map<NodeId, int> label;  // 1-based, <= Gamma
  int max_label = 0;
  Round rounds = 0;
};

LabelingResult ImperfectLabeling(sim::Exec& ex, const Profile& prof,
                                 const std::vector<std::size_t>& members,
                                 const std::vector<ClusterId>& cluster_of,
                                 int gamma, std::uint64_t nonce);

}  // namespace dcc::cluster
